//===- ir/CSE.cpp - local common subexpression elimination -----------------===//
///
/// Local value numbering per basic block. Pure expressions with identical
/// opcode/operands are replaced by copies of the first computation.
/// Redundant loads from the same address are also eliminated, invalidated
/// by any store or call ("memory epoch" in the key).

#include "ir/Analysis.h"
#include "ir/Passes.h"

#include <map>
#include <tuple>

using namespace omni;
using namespace omni::ir;

namespace {

/// Hashable expression key. Fields unused by an op are zeroed.
struct ExprKey {
  Op K;
  Type Ty;
  unsigned A;
  unsigned B;
  bool BIsImm;
  int64_t Imm;
  int64_t Imm2;
  uint64_t FImmBits;
  std::string Sym;
  Cond Cc;
  MemWidth Width;
  bool SignedLoad;
  uint64_t MemEpoch; ///< only for loads

  bool operator<(const ExprKey &O) const {
    return std::tie(K, Ty, A, B, BIsImm, Imm, Imm2, FImmBits, Sym, Cc, Width,
                    SignedLoad, MemEpoch) <
           std::tie(O.K, O.Ty, O.A, O.B, O.BIsImm, O.Imm, O.Imm2, O.FImmBits,
                    O.Sym, O.Cc, O.Width, O.SignedLoad, O.MemEpoch);
  }
};

} // namespace

bool omni::ir::eliminateCommonSubexpressions(Function &F) {
  bool Changed = false;
  for (Block &B : F.Blocks) {
    std::map<ExprKey, Value> Available;
    // Values currently representing an available expression; if redefined,
    // the expressions they represent die.
    std::map<unsigned, std::vector<ExprKey>> RepUses;
    uint64_t MemEpoch = 0;

    for (Inst &I : B.Insts) {
      bool Cacheable = I.isPure() || I.K == Op::Load;
      // Never cache trivial constants/copies; fold passes handle those and
      // caching them would just create more copies.
      if (I.K == Op::ConstInt || I.K == Op::ConstFp || I.K == Op::Copy)
        Cacheable = false;

      // Redefinition invalidates expressions mentioning the old value —
      // before this instruction's own result is recorded.
      if (I.hasDst()) {
        auto It = RepUses.find(I.Dst.Id);
        if (It != RepUses.end()) {
          for (const ExprKey &Key : It->second)
            Available.erase(Key);
          RepUses.erase(It);
        }
      }

      if (Cacheable && I.hasDst()) {
        ExprKey Key{};
        Key.K = I.K;
        Key.Ty = I.Ty;
        Key.A = I.A.isValid() ? I.A.Id : ~0u;
        Key.B = (!I.BIsImm && I.B.isValid()) ? I.B.Id : ~0u;
        Key.BIsImm = I.BIsImm;
        Key.Imm = I.Imm;
        Key.Imm2 = I.Imm2;
        Key.FImmBits = 0;
        Key.Sym = I.Sym;
        Key.Cc = I.Cc;
        Key.Width = I.Width;
        Key.SignedLoad = I.SignedLoad;
        Key.MemEpoch = I.K == Op::Load ? MemEpoch : 0;

        auto It = Available.find(Key);
        if (It != Available.end()) {
          // Replace with a copy of the previous result.
          Value Dst = I.Dst;
          Value Src = It->second;
          I = Inst();
          I.K = Op::Copy;
          I.Ty = Dst.Ty;
          I.Dst = Dst;
          I.A = Src;
          Changed = true;
        } else {
          Available[Key] = I.Dst;
          if (I.A.isValid())
            RepUses[I.A.Id].push_back(Key);
          if (Key.B != ~0u)
            RepUses[Key.B].push_back(Key);
          RepUses[I.Dst.Id].push_back(Key);
        }
      }

      if (I.K == Op::Store || I.K == Op::Call)
        ++MemEpoch;
    }
  }
  return Changed;
}
