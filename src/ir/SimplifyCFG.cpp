//===- ir/SimplifyCFG.cpp - CFG cleanup -------------------------------------===//

#include "ir/Analysis.h"
#include "ir/Passes.h"

using namespace omni;
using namespace omni::ir;

namespace {

/// Follows chains of empty jump-only blocks. Returns the final target.
int threadTarget(const Function &F, int B) {
  int Seen = 0;
  while (Seen++ < 64) { // cycle guard
    const Block &Blk = F.Blocks[B];
    if (Blk.Insts.size() != 1 || Blk.Insts[0].K != Op::Jmp)
      return B;
    int Next = Blk.Insts[0].B1;
    if (Next == B)
      return B;
    B = Next;
  }
  return B;
}

} // namespace

bool omni::ir::simplifyCFG(Function &F) {
  bool Changed = false;

  // 1. Branches with identical targets become jumps; thread jump chains.
  for (Block &B : F.Blocks) {
    if (!B.hasTerminator())
      continue;
    Inst &T = B.Insts.back();
    if (T.K == Op::Br) {
      int NB1 = threadTarget(F, T.B1);
      int NB2 = threadTarget(F, T.B2);
      if (NB1 != T.B1 || NB2 != T.B2) {
        T.B1 = NB1;
        T.B2 = NB2;
        Changed = true;
      }
      if (T.B1 == T.B2) {
        int Target = T.B1;
        T = Inst();
        T.K = Op::Jmp;
        T.B1 = Target;
        Changed = true;
      }
    } else if (T.K == Op::Jmp) {
      int NT = threadTarget(F, T.B1);
      if (NT != T.B1) {
        T.B1 = NT;
        Changed = true;
      }
    }
  }

  // 2. Merge straight-line pairs: B -> S where S has exactly one pred.
  {
    CFG Cfg = CFG::compute(F);
    for (unsigned BI = 0; BI < F.Blocks.size(); ++BI) {
      while (true) {
        Block &B = F.Blocks[BI];
        if (!B.hasTerminator() || B.Insts.back().K != Op::Jmp)
          break;
        int S = B.Insts.back().B1;
        if (S == static_cast<int>(BI) || Cfg.Preds[S].size() != 1)
          break;
        // Splice S into B.
        Block &SB = F.Blocks[S];
        B.Insts.pop_back();
        B.Insts.insert(B.Insts.end(), SB.Insts.begin(), SB.Insts.end());
        SB.Insts.clear();
        // S is now unreachable; keep a placeholder terminator so the
        // verifier stays happy until unreachable-removal below.
        Inst Dead;
        Dead.K = Op::Ret;
        SB.Insts.push_back(Dead);
        Changed = true;
        // Recompute CFG for the next merge opportunity from this block.
        Cfg = CFG::compute(F);
      }
    }
  }

  // 3. Remove unreachable blocks, compacting indices.
  {
    std::vector<int> RPO = computeRPO(F);
    if (RPO.size() != F.Blocks.size()) {
      std::vector<int> NewIndex(F.Blocks.size(), -1);
      // Preserve original relative order for readability.
      std::vector<uint8_t> Reachable(F.Blocks.size(), 0);
      for (int B : RPO)
        Reachable[B] = 1;
      std::vector<Block> NewBlocks;
      for (unsigned B = 0; B < F.Blocks.size(); ++B) {
        if (!Reachable[B])
          continue;
        NewIndex[B] = static_cast<int>(NewBlocks.size());
        NewBlocks.push_back(std::move(F.Blocks[B]));
      }
      for (Block &B : NewBlocks) {
        if (!B.hasTerminator())
          continue;
        Inst &T = B.Insts.back();
        if (T.K == Op::Br) {
          T.B1 = NewIndex[T.B1];
          T.B2 = NewIndex[T.B2];
        } else if (T.K == Op::Jmp) {
          T.B1 = NewIndex[T.B1];
        }
      }
      F.Blocks = std::move(NewBlocks);
      Changed = true;
    }
  }

  return Changed;
}
