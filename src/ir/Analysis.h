//===- ir/Analysis.h - CFG, liveness, dominators, loops ---------*- C++ -*-===//
///
/// \file
/// Dataflow and control-flow analyses shared by the optimizer and the
/// register allocator: predecessor/successor maps, reverse post-order,
/// per-value liveness, iterative dominators, and natural loop detection
/// (used by loop-invariant code motion).
///
//===----------------------------------------------------------------------===//
#ifndef OMNI_IR_ANALYSIS_H
#define OMNI_IR_ANALYSIS_H

#include "ir/IR.h"

#include <vector>

namespace omni {
namespace ir {

/// Calls \p Fn for each virtual register read by \p I.
template <typename FnT> void forEachUse(const Inst &I, FnT Fn) {
  switch (I.K) {
  case Op::ConstInt:
  case Op::ConstFp:
  case Op::AddrOf:
  case Op::FrameAddr:
  case Op::Jmp:
    return;
  case Op::Call:
    if (I.Sym.empty() && I.A.isValid())
      Fn(I.A);
    for (const Value &V : I.Args)
      Fn(V);
    return;
  case Op::Ret:
    if (I.A.isValid())
      Fn(I.A);
    return;
  case Op::Store:
    if (I.Sym.empty() && !I.FrameRel && I.A.isValid())
      Fn(I.A);
    Fn(I.B);
    return;
  case Op::Load:
    if (I.Sym.empty() && !I.FrameRel && I.A.isValid())
      Fn(I.A);
    if (I.Sym.empty() && !I.FrameRel && !I.BIsImm && I.B.isValid())
      Fn(I.B); // indexed load
    return;
  default:
    if (I.A.isValid())
      Fn(I.A);
    if (!I.BIsImm && I.B.isValid())
      Fn(I.B);
    return;
  }
}

/// True when \p I actually reads its B operand as a register.
bool usesBReg(const Inst &I);

/// Control-flow graph edges.
struct CFG {
  std::vector<std::vector<int>> Succs;
  std::vector<std::vector<int>> Preds;

  static CFG compute(const Function &F);
};

/// Reverse post-order of reachable blocks, entry first.
std::vector<int> computeRPO(const Function &F);

/// Per-block, per-value liveness as bitsets.
class Liveness {
public:
  static Liveness compute(const Function &F);

  bool isLiveIn(unsigned BlockIdx, unsigned ValueId) const {
    return test(LiveInBits, BlockIdx, ValueId);
  }
  bool isLiveOut(unsigned BlockIdx, unsigned ValueId) const {
    return test(LiveOutBits, BlockIdx, ValueId);
  }

  unsigned numValues() const { return NumValues; }

private:
  bool test(const std::vector<std::vector<uint64_t>> &Bits, unsigned B,
            unsigned V) const {
    return (Bits[B][V / 64] >> (V % 64)) & 1;
  }
  unsigned NumValues = 0;
  std::vector<std::vector<uint64_t>> LiveInBits;
  std::vector<std::vector<uint64_t>> LiveOutBits;
};

/// Immediate dominators (iterative algorithm over RPO).
class Dominators {
public:
  static Dominators compute(const Function &F);

  /// True when block \p A dominates block \p B. Unreachable blocks
  /// dominate nothing and are dominated by everything reachable? No —
  /// queries on unreachable blocks return false.
  bool dominates(int A, int B) const;

  int idom(int B) const { return Idom[B]; }
  bool isReachable(int B) const { return Idom[B] != Unprocessed || B == 0; }

private:
  static constexpr int Unprocessed = -2;
  std::vector<int> Idom; ///< entry has -1
};

/// One natural loop.
struct Loop {
  int Header = -1;
  std::vector<int> Blocks; ///< includes header
  std::vector<int> ExitBlocks; ///< blocks inside with a successor outside

  bool contains(int B) const {
    for (int X : Blocks)
      if (X == B)
        return true;
    return false;
  }
};

/// Finds all natural loops from back edges (target dominates source).
/// Loops sharing a header are merged.
std::vector<Loop> findLoops(const Function &F, const Dominators &Dom,
                            const CFG &Cfg);

} // namespace ir
} // namespace omni

#endif // OMNI_IR_ANALYSIS_H
