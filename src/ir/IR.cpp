//===- ir/IR.cpp ----------------------------------------------------------===//

#include "ir/IR.h"

#include "support/Format.h"

using namespace omni;
using namespace omni::ir;

Cond omni::ir::swapCond(Cond C) {
  switch (C) {
  case Cond::Eq:
  case Cond::Ne:
    return C;
  case Cond::Lt:
    return Cond::Gt;
  case Cond::Le:
    return Cond::Ge;
  case Cond::Gt:
    return Cond::Lt;
  case Cond::Ge:
    return Cond::Le;
  case Cond::LtU:
    return Cond::GtU;
  case Cond::LeU:
    return Cond::GeU;
  case Cond::GtU:
    return Cond::LtU;
  case Cond::GeU:
    return Cond::LeU;
  }
  return C;
}

Cond omni::ir::negateCond(Cond C, bool IsFp) {
  switch (C) {
  case Cond::Eq:
    return Cond::Ne;
  case Cond::Ne:
    return Cond::Eq;
  case Cond::Lt:
    assert(!IsFp && "fp < negation not NaN-safe");
    return Cond::Ge;
  case Cond::Le:
    assert(!IsFp && "fp <= negation not NaN-safe");
    return Cond::Gt;
  case Cond::Gt:
    assert(!IsFp && "fp > negation not NaN-safe");
    return Cond::Le;
  case Cond::Ge:
    assert(!IsFp && "fp >= negation not NaN-safe");
    return Cond::Lt;
  case Cond::LtU:
    return Cond::GeU;
  case Cond::LeU:
    return Cond::GtU;
  case Cond::GtU:
    return Cond::LeU;
  case Cond::GeU:
    return Cond::LtU;
  }
  return C;
}

const char *omni::ir::getCondName(Cond C) {
  switch (C) {
  case Cond::Eq:
    return "eq";
  case Cond::Ne:
    return "ne";
  case Cond::Lt:
    return "lt";
  case Cond::Le:
    return "le";
  case Cond::Gt:
    return "gt";
  case Cond::Ge:
    return "ge";
  case Cond::LtU:
    return "ltu";
  case Cond::LeU:
    return "leu";
  case Cond::GtU:
    return "gtu";
  case Cond::GeU:
    return "geu";
  }
  return "?";
}

void Function::successors(unsigned BlockIdx, int Out[2]) const {
  Out[0] = Out[1] = -1;
  const Block &B = Blocks[BlockIdx];
  if (!B.hasTerminator())
    return;
  const Inst &T = B.terminator();
  if (T.K == Op::Br) {
    Out[0] = T.B1;
    Out[1] = T.B2;
  } else if (T.K == Op::Jmp) {
    Out[0] = T.B1;
  }
}

Function *Program::findFunction(const std::string &Name) {
  for (Function &F : Functions)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

const Function *Program::findFunction(const std::string &Name) const {
  for (const Function &F : Functions)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

const GlobalVar *Program::findGlobal(const std::string &Name) const {
  for (const GlobalVar &G : Globals)
    if (G.Name == Name)
      return &G;
  return nullptr;
}

bool Program::isImport(const std::string &Name) const {
  for (const std::string &I : Imports)
    if (I == Name)
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

namespace {

const char *typeName(Type T) {
  switch (T) {
  case Type::I32:
    return "i32";
  case Type::F32:
    return "f32";
  case Type::F64:
    return "f64";
  }
  return "?";
}

const char *widthName(MemWidth W) {
  switch (W) {
  case MemWidth::W8:
    return "w8";
  case MemWidth::W16:
    return "w16";
  case MemWidth::W32:
    return "w32";
  case MemWidth::F32:
    return "f32";
  case MemWidth::F64:
    return "f64";
  }
  return "?";
}

std::string valueName(const Value &V) {
  if (!V.isValid())
    return "<none>";
  return formatStr("%%%u", V.Id);
}

const char *opName(Op K) {
  switch (K) {
  case Op::ConstInt:
    return "const";
  case Op::ConstFp:
    return "fconst";
  case Op::AddrOf:
    return "addrof";
  case Op::FrameAddr:
    return "frameaddr";
  case Op::Copy:
    return "copy";
  case Op::Add:
    return "add";
  case Op::Sub:
    return "sub";
  case Op::Mul:
    return "mul";
  case Op::Div:
    return "div";
  case Op::DivU:
    return "divu";
  case Op::Rem:
    return "rem";
  case Op::RemU:
    return "remu";
  case Op::And:
    return "and";
  case Op::Or:
    return "or";
  case Op::Xor:
    return "xor";
  case Op::Shl:
    return "shl";
  case Op::ShrL:
    return "shrl";
  case Op::ShrA:
    return "shra";
  case Op::Neg:
    return "neg";
  case Op::Not:
    return "not";
  case Op::FAdd:
    return "fadd";
  case Op::FSub:
    return "fsub";
  case Op::FMul:
    return "fmul";
  case Op::FDiv:
    return "fdiv";
  case Op::FNeg:
    return "fneg";
  case Op::Cmp:
    return "cmp";
  case Op::SignExt8:
    return "sext8";
  case Op::SignExt16:
    return "sext16";
  case Op::ZeroExt8:
    return "zext8";
  case Op::ZeroExt16:
    return "zext16";
  case Op::IntToFp:
    return "itof";
  case Op::FpToInt:
    return "ftoi";
  case Op::FpExt:
    return "fpext";
  case Op::FpTrunc:
    return "fptrunc";
  case Op::Load:
    return "load";
  case Op::Store:
    return "store";
  case Op::Call:
    return "call";
  case Op::Br:
    return "br";
  case Op::Jmp:
    return "jmp";
  case Op::Ret:
    return "ret";
  }
  return "?";
}

std::string printInst(const Inst &I) {
  std::string S = "  ";
  if (I.hasDst())
    S += valueName(I.Dst) + std::string(":") + typeName(I.Dst.Ty) + " = ";
  S += opName(I.K);
  switch (I.K) {
  case Op::ConstInt:
    appendFormat(S, " %lld", static_cast<long long>(I.Imm));
    break;
  case Op::ConstFp:
    appendFormat(S, " %g", I.FImm);
    break;
  case Op::AddrOf:
    appendFormat(S, " @%s+%lld", I.Sym.c_str(),
                 static_cast<long long>(I.Imm));
    break;
  case Op::FrameAddr:
    appendFormat(S, " slot%lld+%lld", static_cast<long long>(I.Imm2),
                 static_cast<long long>(I.Imm));
    break;
  case Op::Cmp:
  case Op::Br:
    appendFormat(S, ".%s.%s %s, ", getCondName(I.Cc), typeName(I.Ty),
                 valueName(I.A).c_str());
    if (I.BIsImm)
      appendFormat(S, "%lld", static_cast<long long>(I.Imm));
    else
      S += valueName(I.B);
    if (I.K == Op::Br)
      appendFormat(S, " -> b%d, b%d", I.B1, I.B2);
    break;
  case Op::Load:
    appendFormat(S, ".%s%s ", widthName(I.Width),
                 (I.Width == MemWidth::W8 || I.Width == MemWidth::W16)
                     ? (I.SignedLoad ? "s" : "u")
                     : "");
    if (I.FrameRel)
      appendFormat(S, "slot%lld+%lld", static_cast<long long>(I.Imm2),
                   static_cast<long long>(I.Imm));
    else if (!I.Sym.empty())
      appendFormat(S, "@%s+%lld", I.Sym.c_str(),
                   static_cast<long long>(I.Imm));
    else
      appendFormat(S, "[%s+%lld]", valueName(I.A).c_str(),
                   static_cast<long long>(I.Imm));
    break;
  case Op::Store:
    appendFormat(S, ".%s ", widthName(I.Width));
    if (I.FrameRel)
      appendFormat(S, "slot%lld+%lld", static_cast<long long>(I.Imm2),
                   static_cast<long long>(I.Imm));
    else if (!I.Sym.empty())
      appendFormat(S, "@%s+%lld", I.Sym.c_str(),
                   static_cast<long long>(I.Imm));
    else
      appendFormat(S, "[%s+%lld]", valueName(I.A).c_str(),
                   static_cast<long long>(I.Imm));
    S += ", " + valueName(I.B);
    break;
  case Op::Call:
    if (!I.Sym.empty())
      appendFormat(S, " @%s%s", I.Sym.c_str(),
                   I.IsImportCall ? "!import" : "");
    else
      S += " " + valueName(I.A);
    S += "(";
    for (size_t AI = 0; AI < I.Args.size(); ++AI) {
      if (AI)
        S += ", ";
      S += valueName(I.Args[AI]);
    }
    S += ")";
    break;
  case Op::Jmp:
    appendFormat(S, " b%d", I.B1);
    break;
  case Op::Ret:
    if (I.A.isValid())
      S += " " + valueName(I.A);
    break;
  default:
    S += " " + valueName(I.A);
    if (I.K != Op::Copy && I.K != Op::Neg && I.K != Op::Not &&
        I.K != Op::FNeg && I.K != Op::SignExt8 && I.K != Op::SignExt16 &&
        I.K != Op::ZeroExt8 && I.K != Op::ZeroExt16 && I.K != Op::IntToFp &&
        I.K != Op::FpToInt && I.K != Op::FpExt && I.K != Op::FpTrunc) {
      if (I.BIsImm)
        appendFormat(S, ", %lld", static_cast<long long>(I.Imm));
      else
        S += ", " + valueName(I.B);
    }
    break;
  }
  return S;
}

} // namespace

std::string omni::ir::printFunction(const Function &F) {
  std::string S = formatStr("func @%s(", F.Name.c_str());
  for (size_t I = 0; I < F.ParamTypes.size(); ++I) {
    if (I)
      S += ", ";
    appendFormat(S, "%s:%s", valueName(F.ParamValues[I]).c_str(),
                 typeName(F.ParamTypes[I]));
  }
  appendFormat(S, ") -> %s {\n", F.HasRet ? typeName(F.RetTy) : "void");
  for (size_t SI = 0; SI < F.Slots.size(); ++SI)
    appendFormat(S, "  slot%zu: size=%u align=%u (%s)\n", SI,
                 F.Slots[SI].Size, F.Slots[SI].Align,
                 F.Slots[SI].Name.c_str());
  for (size_t BI = 0; BI < F.Blocks.size(); ++BI) {
    appendFormat(S, "b%zu:%s%s\n", BI,
                 F.Blocks[BI].Name.empty() ? "" : "  ; ",
                 F.Blocks[BI].Name.c_str());
    for (const Inst &I : F.Blocks[BI].Insts)
      S += printInst(I) + "\n";
  }
  S += "}\n";
  return S;
}

std::string omni::ir::printProgram(const Program &P) {
  std::string S;
  for (const std::string &I : P.Imports)
    appendFormat(S, "import @%s\n", I.c_str());
  for (const GlobalVar &G : P.Globals)
    appendFormat(S, "global @%s size=%u align=%u init=%zu ptrs=%zu\n",
                 G.Name.c_str(), G.Size, G.Align, G.Init.size(),
                 G.PtrInits.size());
  for (const Function &F : P.Functions)
    S += printFunction(F);
  return S;
}

//===----------------------------------------------------------------------===//
// Verification
//===----------------------------------------------------------------------===//

bool omni::ir::verifyFunction(const Function &F,
                              std::vector<std::string> &Errors) {
  size_t Before = Errors.size();
  auto Err = [&](const std::string &Msg) {
    Errors.push_back(formatStr("@%s: %s", F.Name.c_str(), Msg.c_str()));
  };
  if (F.Blocks.empty()) {
    Err("function has no blocks");
    return false;
  }
  int NumBlocks = static_cast<int>(F.Blocks.size());
  for (size_t BI = 0; BI < F.Blocks.size(); ++BI) {
    const Block &B = F.Blocks[BI];
    if (!B.hasTerminator()) {
      Err(formatStr("b%zu has no terminator", BI));
      continue;
    }
    for (size_t II = 0; II < B.Insts.size(); ++II) {
      const Inst &I = B.Insts[II];
      if (I.isTerminator() && II + 1 != B.Insts.size())
        Err(formatStr("b%zu: terminator not last", BI));
      if (I.K == Op::Br) {
        if (I.B1 < 0 || I.B1 >= NumBlocks || I.B2 < 0 || I.B2 >= NumBlocks)
          Err(formatStr("b%zu: branch target out of range", BI));
      } else if (I.K == Op::Jmp) {
        if (I.B1 < 0 || I.B1 >= NumBlocks)
          Err(formatStr("b%zu: jump target out of range", BI));
      }
      if ((I.K == Op::FrameAddr ||
           ((I.K == Op::Load || I.K == Op::Store) && I.FrameRel)) &&
          (I.Imm2 < 0 || static_cast<size_t>(I.Imm2) >= F.Slots.size()))
        Err(formatStr("b%zu: frame slot reference out of range", BI));
      if (I.hasDst() && I.Dst.Id >= F.NextValueId)
        Err(formatStr("b%zu: dst value id out of range", BI));
      // Immediates only make sense for integer-typed second operands.
      if (I.BIsImm && (I.K == Op::FAdd || I.K == Op::FSub ||
                       I.K == Op::FMul || I.K == Op::FDiv))
        Err(formatStr("b%zu: fp op with immediate", BI));
    }
  }
  return Errors.size() == Before;
}

bool omni::ir::verifyProgram(const Program &P,
                             std::vector<std::string> &Errors) {
  size_t Before = Errors.size();
  for (const Function &F : P.Functions)
    verifyFunction(F, Errors);
  return Errors.size() == Before;
}
