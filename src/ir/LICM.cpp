//===- ir/LICM.cpp - loop-invariant code motion ----------------------------===//

#include "ir/Analysis.h"
#include "ir/Passes.h"

#include <algorithm>

using namespace omni;
using namespace omni::ir;

namespace {

/// Ensures loop \p L has a preheader: a block whose only successor is the
/// header and which receives all non-back-edge entries. Returns its index,
/// creating one (and updating \p Cfg invalidation responsibility rests on
/// the caller) when needed. Returns -1 when the header is the function
/// entry with no preds (cannot happen for natural loops) or when layout
/// can't be fixed.
int ensurePreheader(Function &F, const Loop &L, const CFG &Cfg) {
  int Header = L.Header;
  // Collect entry edges (preds outside the loop).
  std::vector<int> OutsidePreds;
  for (int P : Cfg.Preds[Header])
    if (!L.contains(P))
      OutsidePreds.push_back(P);
  if (OutsidePreds.size() == 1) {
    int P = OutsidePreds[0];
    // Usable as preheader only if its sole successor is the header.
    if (Cfg.Succs[P].size() == 1 && Cfg.Succs[P][0] == Header)
      return P;
  }
  if (Header == 0)
    return -1; // entry block loops directly; create below handles preds only
  // Create a fresh preheader.
  int Pre = static_cast<int>(F.Blocks.size());
  F.Blocks.push_back(Block());
  F.Blocks.back().Name = "preheader";
  Inst J;
  J.K = Op::Jmp;
  J.B1 = Header;
  F.Blocks.back().Insts.push_back(J);
  // Redirect all outside preds' edges into the preheader.
  for (int P : OutsidePreds) {
    Inst &T = F.Blocks[P].Insts.back();
    if (T.K == Op::Jmp && T.B1 == Header)
      T.B1 = Pre;
    else if (T.K == Op::Br) {
      if (T.B1 == Header)
        T.B1 = Pre;
      if (T.B2 == Header)
        T.B2 = Pre;
    }
  }
  return Pre;
}

} // namespace

bool omni::ir::hoistLoopInvariants(Function &F) {
  bool Changed = false;
  Dominators Dom = Dominators::compute(F);
  CFG Cfg = CFG::compute(F);
  std::vector<Loop> Loops = findLoops(F, Dom, Cfg);
  if (Loops.empty())
    return false;
  // Process larger (outer) loops last so inner-loop hoists can cascade
  // outward across pipeline iterations; within one call, process each loop
  // independently against the current function state.
  std::sort(Loops.begin(), Loops.end(),
            [](const Loop &A, const Loop &B) {
              return A.Blocks.size() < B.Blocks.size();
            });

  for (const Loop &L : Loops) {
    // Values defined inside the loop, and how many times.
    std::vector<unsigned> DefsInLoop(F.NextValueId, 0);
    for (int BI : L.Blocks)
      for (const Inst &I : F.Blocks[BI].Insts)
        if (I.hasDst())
          ++DefsInLoop[I.Dst.Id];

    Liveness Live = Liveness::compute(F);

    int Pre = -1; // created lazily on first hoist
    bool LoopChanged = true;
    while (LoopChanged) {
      LoopChanged = false;
      for (int BI : L.Blocks) {
        // Instructions that may trap (division with a possibly-zero
        // divisor) may only be hoisted from blocks that execute on every
        // iteration (dominate all loop exits). Non-trapping pure
        // instructions can be speculated into the preheader freely.
        bool DominatesExits = true;
        for (int E : L.ExitBlocks)
          if (!Dom.dominates(BI, E))
            DominatesExits = false;

        for (size_t II = 0; II < F.Blocks[BI].Insts.size(); ++II) {
          // Note: creating a preheader appends a block, which may
          // reallocate F.Blocks — always index, never hold references
          // across that point.
          Inst I = F.Blocks[BI].Insts[II];
          if (!I.isPure() || !I.hasDst())
            continue;
          bool MayTrap = (I.K == Op::Div || I.K == Op::DivU ||
                          I.K == Op::Rem || I.K == Op::RemU) &&
                         !(I.BIsImm && I.Imm != 0);
          if (MayTrap && !DominatesExits)
            continue;
          if (DefsInLoop[I.Dst.Id] != 1)
            continue;
          // Not loop-carried: must not be live into the header.
          if (Live.isLiveIn(L.Header, I.Dst.Id))
            continue;
          bool OperandsInvariant = true;
          forEachUse(I, [&](const Value &V) {
            if (DefsInLoop[V.Id] != 0)
              OperandsInvariant = false;
          });
          if (!OperandsInvariant)
            continue;

          if (Pre < 0) {
            Pre = ensurePreheader(F, L, Cfg);
            if (Pre < 0)
              break;
            // A new block may have been appended; refresh analyses that
            // index by block.
            Cfg = CFG::compute(F);
          }
          // Move the instruction to the preheader, before its terminator.
          Block &P = F.Blocks[Pre];
          P.Insts.insert(P.Insts.end() - 1, I);
          DefsInLoop[I.Dst.Id] = 0;
          F.Blocks[BI].Insts.erase(F.Blocks[BI].Insts.begin() + II);
          --II;
          Changed = LoopChanged = true;
        }
      }
      if (LoopChanged)
        Live = Liveness::compute(F);
    }
  }
  return Changed;
}
