//===- ir/Passes.h - Machine-independent optimizer ---------------*- C++ -*-===//
///
/// \file
/// The machine-independent optimization passes the Omniware design puts in
/// the *compiler* (before shipping the module), as opposed to the cheap
/// local optimizations the load-time translator performs. Each pass is
/// exposed individually for unit testing; `optimize` runs a pipeline to a
/// fixpoint.
///
//===----------------------------------------------------------------------===//
#ifndef OMNI_IR_PASSES_H
#define OMNI_IR_PASSES_H

#include "ir/IR.h"

namespace omni {
namespace ir {

/// Which passes run, and how hard. Two presets model the paper's compilers:
/// the OmniVM-targeting gcc ("O2g") and the vendor cc whose *machine
/// independent* half is comparable but which additionally folds more
/// aggressively across iterations.
struct OptOptions {
  bool ConstFold = true;
  bool CopyProp = true;
  bool LocalCSE = true;
  bool DCE = true;
  bool StrengthReduce = true;
  bool LICM = true;
  bool SimplifyCFG = true;
  unsigned MaxIterations = 8;

  /// No optimization (straight lowering).
  static OptOptions none();
  /// The gcc-2.x-era pipeline used for OmniVM modules and the gcc-native
  /// baseline.
  static OptOptions standard();
  /// The vendor-cc pipeline (same passes, more fixpoint iterations).
  static OptOptions aggressive();
};

/// Local constant folding/propagation + algebraic simplification +
/// global propagation of single-def constants. Converts constant-condition
/// branches to jumps. Returns true when anything changed.
bool foldConstants(Function &F);

/// Local copy propagation.
bool propagateCopies(Function &F);

/// Local common subexpression elimination by value numbering; redundant
/// loads are eliminated until a store/call clobbers memory.
bool eliminateCommonSubexpressions(Function &F);

/// Liveness-based dead code elimination (pure instructions and loads with
/// dead results; dead call results are dropped but calls kept).
bool eliminateDeadCode(Function &F);

/// Strength reduction of multiply/divide by constants into shifts/adds.
bool reduceStrength(Function &F);

/// Loop-invariant code motion: hoists pure invariant instructions into a
/// (created on demand) preheader.
bool hoistLoopInvariants(Function &F);

/// Branch-to-jump cleanup, jump threading, block merging, unreachable
/// block removal.
bool simplifyCFG(Function &F);

/// Code-generator preparation: rewrites single-use "addr = base + index;
/// load [addr]" pairs into OmniVM's indexed addressing mode (reg+reg
/// loads). Run after optimization, before OmniVM code generation — this is
/// instruction selection, not optimization, so it runs at every -O level.
bool foldIndexedAddressing(Function &F);

/// Runs the configured pipeline to a fixpoint (bounded by MaxIterations).
void optimize(Function &F, const OptOptions &Opts);
void optimizeProgram(Program &P, const OptOptions &Opts);

} // namespace ir
} // namespace omni

#endif // OMNI_IR_PASSES_H
