//===- ir/DCE.cpp - liveness-based dead code elimination --------------------===//

#include "ir/Analysis.h"
#include "ir/Passes.h"

using namespace omni;
using namespace omni::ir;

bool omni::ir::eliminateDeadCode(Function &F) {
  Liveness L = Liveness::compute(F);
  bool Changed = false;
  for (unsigned BI = 0; BI < F.Blocks.size(); ++BI) {
    Block &B = F.Blocks[BI];
    // Walk backward maintaining the live set from block live-out.
    std::vector<uint8_t> Live(F.NextValueId, 0);
    for (unsigned V = 0; V < F.NextValueId; ++V)
      Live[V] = L.isLiveOut(BI, V);

    std::vector<uint8_t> Keep(B.Insts.size(), 1);
    for (int II = static_cast<int>(B.Insts.size()) - 1; II >= 0; --II) {
      Inst &I = B.Insts[II];
      bool DstDead = I.hasDst() && !Live[I.Dst.Id];
      bool Removable = (I.isPure() || I.K == Op::Load) && I.hasDst();
      if (Removable && DstDead) {
        Keep[II] = 0;
        Changed = true;
        continue; // its uses do not become live
      }
      // A call whose result is dead keeps its side effects but drops the
      // result so the register allocator need not reserve a register.
      if (I.K == Op::Call && DstDead) {
        I.Dst = Value();
        Changed = true;
      }
      if (I.hasDst())
        Live[I.Dst.Id] = 0;
      forEachUse(I, [&](const Value &V) { Live[V.Id] = 1; });
    }
    if (Changed) {
      std::vector<Inst> Kept;
      Kept.reserve(B.Insts.size());
      for (size_t II = 0; II < B.Insts.size(); ++II)
        if (Keep[II])
          Kept.push_back(std::move(B.Insts[II]));
      B.Insts = std::move(Kept);
    }
  }
  return Changed;
}
