//===- ir/IRBuilder.h - Convenience IR construction -------------*- C++ -*-===//
///
/// \file
/// Helper for building IR functions; used by the MiniC frontend lowering
/// and by optimizer unit tests.
///
//===----------------------------------------------------------------------===//
#ifndef OMNI_IR_IRBUILDER_H
#define OMNI_IR_IRBUILDER_H

#include "ir/IR.h"

namespace omni {
namespace ir {

/// Appends instructions to a current block of a function.
class IRBuilder {
public:
  explicit IRBuilder(Function &F) : F(F) {}

  Function &function() { return F; }

  /// Creates a new empty block and returns its index.
  unsigned createBlock(std::string Name = "") {
    F.Blocks.push_back(Block());
    F.Blocks.back().Name = std::move(Name);
    return static_cast<unsigned>(F.Blocks.size() - 1);
  }

  void setInsertPoint(unsigned BlockIdx) { Cur = BlockIdx; }
  unsigned insertBlock() const { return Cur; }

  /// True when the current block already ends in a terminator (the caller
  /// should not emit more code into it).
  bool blockTerminated() const { return F.Blocks[Cur].hasTerminator(); }

  Inst &append(Inst I) {
    F.Blocks[Cur].Insts.push_back(std::move(I));
    return F.Blocks[Cur].Insts.back();
  }

  Value constInt(int64_t V) {
    Inst I;
    I.K = Op::ConstInt;
    I.Imm = V;
    I.Dst = F.newValue(Type::I32);
    append(I);
    return I.Dst;
  }

  Value constFp(double V, Type Ty) {
    Inst I;
    I.K = Op::ConstFp;
    I.Ty = Ty;
    I.FImm = V;
    I.Dst = F.newValue(Ty);
    append(I);
    return I.Dst;
  }

  Value addrOf(std::string Sym, int64_t Off = 0) {
    Inst I;
    I.K = Op::AddrOf;
    I.Sym = std::move(Sym);
    I.Imm = Off;
    I.Dst = F.newValue(Type::I32);
    append(I);
    return I.Dst;
  }

  Value frameAddr(unsigned Slot, int64_t Off = 0) {
    Inst I;
    I.K = Op::FrameAddr;
    I.Imm2 = Slot;
    I.Imm = Off;
    I.Dst = F.newValue(Type::I32);
    append(I);
    return I.Dst;
  }

  Value copy(Value Src) {
    Inst I;
    I.K = Op::Copy;
    I.Ty = Src.Ty;
    I.A = Src;
    I.Dst = F.newValue(Src.Ty);
    append(I);
    return I.Dst;
  }

  /// Copy into a specific existing register (variable assignment).
  void copyTo(Value Dst, Value Src) {
    Inst I;
    I.K = Op::Copy;
    I.Ty = Dst.Ty;
    I.A = Src;
    I.Dst = Dst;
    append(I);
  }

  Value binary(Op K, Value A, Value B) {
    Inst I;
    I.K = K;
    I.Ty = A.Ty;
    I.A = A;
    I.B = B;
    I.Dst = F.newValue(A.Ty);
    append(I);
    return I.Dst;
  }

  Value binaryImm(Op K, Value A, int64_t Imm) {
    Inst I;
    I.K = K;
    I.Ty = A.Ty;
    I.A = A;
    I.BIsImm = true;
    I.Imm = Imm;
    I.Dst = F.newValue(A.Ty);
    append(I);
    return I.Dst;
  }

  Value unary(Op K, Value A, Type DstTy) {
    Inst I;
    I.K = K;
    I.Ty = K == Op::FpToInt ? A.Ty : DstTy;
    I.A = A;
    I.Dst = F.newValue(DstTy);
    append(I);
    return I.Dst;
  }

  Value cmp(Cond Cc, Value A, Value B) {
    Inst I;
    I.K = Op::Cmp;
    I.Ty = A.Ty;
    I.Cc = Cc;
    I.A = A;
    I.B = B;
    I.Dst = F.newValue(Type::I32);
    append(I);
    return I.Dst;
  }

  Value cmpImm(Cond Cc, Value A, int64_t Imm) {
    Inst I;
    I.K = Op::Cmp;
    I.Ty = A.Ty;
    I.Cc = Cc;
    I.A = A;
    I.BIsImm = true;
    I.Imm = Imm;
    I.Dst = F.newValue(Type::I32);
    append(I);
    return I.Dst;
  }

  Value load(Type RegTy, MemWidth W, bool Signed, Value Base,
             int64_t Off = 0, std::string Sym = "") {
    Inst I;
    I.K = Op::Load;
    I.Ty = RegTy;
    I.Width = W;
    I.SignedLoad = Signed;
    I.A = Base;
    I.Imm = Off;
    I.Sym = std::move(Sym);
    I.Dst = F.newValue(RegTy);
    append(I);
    return I.Dst;
  }

  Value loadGlobal(Type RegTy, MemWidth W, bool Signed, std::string Sym,
                   int64_t Off = 0) {
    return load(RegTy, W, Signed, Value(), Off, std::move(Sym));
  }

  void store(MemWidth W, Value Base, int64_t Off, Value Val,
             std::string Sym = "") {
    Inst I;
    I.K = Op::Store;
    I.Width = W;
    I.A = Base;
    I.Imm = Off;
    I.B = Val;
    I.Sym = std::move(Sym);
    append(I);
  }

  void storeGlobal(MemWidth W, std::string Sym, int64_t Off, Value Val) {
    store(W, Value(), Off, Val, std::move(Sym));
  }

  Value loadFrame(Type RegTy, MemWidth W, bool Signed, unsigned Slot,
                  int64_t Off = 0) {
    Inst I;
    I.K = Op::Load;
    I.Ty = RegTy;
    I.Width = W;
    I.SignedLoad = Signed;
    I.FrameRel = true;
    I.Imm2 = Slot;
    I.Imm = Off;
    I.Dst = F.newValue(RegTy);
    append(I);
    return I.Dst;
  }

  void storeFrame(MemWidth W, unsigned Slot, int64_t Off, Value Val) {
    Inst I;
    I.K = Op::Store;
    I.Width = W;
    I.FrameRel = true;
    I.Imm2 = Slot;
    I.Imm = Off;
    I.B = Val;
    append(I);
  }

  /// Direct call; pass an invalid-type marker by setting \p HasRet false.
  Value call(std::string Callee, bool IsImport, std::vector<Value> Args,
             bool HasRet, Type RetTy) {
    Inst I;
    I.K = Op::Call;
    I.Sym = std::move(Callee);
    I.IsImportCall = IsImport;
    I.Args = std::move(Args);
    if (HasRet) {
      I.Ty = RetTy;
      I.Dst = F.newValue(RetTy);
    }
    append(I);
    return I.Dst;
  }

  Value callIndirect(Value Fn, std::vector<Value> Args, bool HasRet,
                     Type RetTy) {
    Inst I;
    I.K = Op::Call;
    I.A = Fn;
    I.Args = std::move(Args);
    if (HasRet) {
      I.Ty = RetTy;
      I.Dst = F.newValue(RetTy);
    }
    append(I);
    return I.Dst;
  }

  void br(Cond Cc, Value A, Value B, int TrueBlk, int FalseBlk) {
    Inst I;
    I.K = Op::Br;
    I.Ty = A.Ty;
    I.Cc = Cc;
    I.A = A;
    I.B = B;
    I.B1 = TrueBlk;
    I.B2 = FalseBlk;
    append(I);
  }

  void brImm(Cond Cc, Value A, int64_t Imm, int TrueBlk, int FalseBlk) {
    Inst I;
    I.K = Op::Br;
    I.Ty = A.Ty;
    I.Cc = Cc;
    I.A = A;
    I.BIsImm = true;
    I.Imm = Imm;
    I.B1 = TrueBlk;
    I.B2 = FalseBlk;
    append(I);
  }

  void jmp(int Blk) {
    Inst I;
    I.K = Op::Jmp;
    I.B1 = Blk;
    append(I);
  }

  void ret(Value V) {
    Inst I;
    I.K = Op::Ret;
    I.A = V;
    append(I);
  }

  void retVoid() {
    Inst I;
    I.K = Op::Ret;
    append(I);
  }

private:
  Function &F;
  unsigned Cur = 0;
};

} // namespace ir
} // namespace omni

#endif // OMNI_IR_IRBUILDER_H
