//===- ir/ConstFold.cpp - constant folding/propagation, copy prop ---------===//

#include "ir/Analysis.h"
#include "ir/Passes.h"

#include <limits>
#include <map>
#include <optional>

using namespace omni;
using namespace omni::ir;

namespace {

/// Wrap-safe 32-bit arithmetic on int64 immediates.
int32_t asI32(int64_t V) { return static_cast<int32_t>(V); }
uint32_t asU32(int64_t V) { return static_cast<uint32_t>(V); }

std::optional<int64_t> foldIntBinary(Op K, int64_t A64, int64_t B64) {
  int32_t A = asI32(A64), B = asI32(B64);
  uint32_t UA = asU32(A64), UB = asU32(B64);
  switch (K) {
  case Op::Add:
    return asI32(UA + UB);
  case Op::Sub:
    return asI32(UA - UB);
  case Op::Mul:
    return asI32(UA * UB);
  case Op::Div:
    if (B == 0)
      return std::nullopt;
    if (A == std::numeric_limits<int32_t>::min() && B == -1)
      return A;
    return A / B;
  case Op::DivU:
    if (UB == 0)
      return std::nullopt;
    return asI32(UA / UB);
  case Op::Rem:
    if (B == 0)
      return std::nullopt;
    if (A == std::numeric_limits<int32_t>::min() && B == -1)
      return 0;
    return A % B;
  case Op::RemU:
    if (UB == 0)
      return std::nullopt;
    return asI32(UA % UB);
  case Op::And:
    return asI32(UA & UB);
  case Op::Or:
    return asI32(UA | UB);
  case Op::Xor:
    return asI32(UA ^ UB);
  case Op::Shl:
    return asI32(UA << (UB & 31));
  case Op::ShrL:
    return asI32(UA >> (UB & 31));
  case Op::ShrA:
    return A >> (UB & 31);
  default:
    return std::nullopt;
  }
}

bool evalCond(Cond Cc, int64_t A64, int64_t B64) {
  int32_t A = asI32(A64), B = asI32(B64);
  uint32_t UA = asU32(A64), UB = asU32(B64);
  switch (Cc) {
  case Cond::Eq:
    return A == B;
  case Cond::Ne:
    return A != B;
  case Cond::Lt:
    return A < B;
  case Cond::Le:
    return A <= B;
  case Cond::Gt:
    return A > B;
  case Cond::Ge:
    return A >= B;
  case Cond::LtU:
    return UA < UB;
  case Cond::LeU:
    return UA <= UB;
  case Cond::GtU:
    return UA > UB;
  case Cond::GeU:
    return UA >= UB;
  }
  return false;
}

std::optional<double> foldFpBinary(Op K, double A, double B, Type Ty) {
  double R;
  switch (K) {
  case Op::FAdd:
    R = A + B;
    break;
  case Op::FSub:
    R = A - B;
    break;
  case Op::FMul:
    R = A * B;
    break;
  case Op::FDiv:
    R = A / B;
    break;
  default:
    return std::nullopt;
  }
  // Match runtime single-precision rounding.
  if (Ty == Type::F32)
    R = static_cast<float>(R);
  return R;
}

/// Per-block constant/copy environment keyed by value id.
struct Env {
  std::map<unsigned, int64_t> IntConst;
  std::map<unsigned, double> FpConst;

  void kill(unsigned Id) {
    IntConst.erase(Id);
    FpConst.erase(Id);
  }
};

} // namespace

bool omni::ir::foldConstants(Function &F) {
  bool Changed = false;

  // Global facts: values with exactly one def that is a constant.
  std::vector<unsigned> DefCount(F.NextValueId, 0);
  for (const Block &B : F.Blocks)
    for (const Inst &I : B.Insts)
      if (I.hasDst())
        ++DefCount[I.Dst.Id];
  for (const Value &P : F.ParamValues)
    ++DefCount[P.Id];
  std::map<unsigned, int64_t> GlobalInt;
  std::map<unsigned, double> GlobalFp;
  for (const Block &B : F.Blocks)
    for (const Inst &I : B.Insts) {
      if (!I.hasDst() || DefCount[I.Dst.Id] != 1)
        continue;
      if (I.K == Op::ConstInt)
        GlobalInt[I.Dst.Id] = I.Imm;
      else if (I.K == Op::ConstFp)
        GlobalFp[I.Dst.Id] = I.FImm;
    }

  for (Block &B : F.Blocks) {
    Env E;
    auto IntOf = [&](const Value &V) -> std::optional<int64_t> {
      auto It = E.IntConst.find(V.Id);
      if (It != E.IntConst.end())
        return It->second;
      auto G = GlobalInt.find(V.Id);
      if (G != GlobalInt.end())
        return G->second;
      return std::nullopt;
    };
    auto FpOf = [&](const Value &V) -> std::optional<double> {
      auto It = E.FpConst.find(V.Id);
      if (It != E.FpConst.end())
        return It->second;
      auto G = GlobalFp.find(V.Id);
      if (G != GlobalFp.end())
        return G->second;
      return std::nullopt;
    };
    auto MakeConstInt = [&](Inst &I, int64_t V) {
      Value Dst = I.Dst;
      I = Inst();
      I.K = Op::ConstInt;
      I.Dst = Dst;
      I.Imm = asI32(V);
      Changed = true;
    };
    auto MakeConstFp = [&](Inst &I, double V, Type Ty) {
      Value Dst = I.Dst;
      I = Inst();
      I.K = Op::ConstFp;
      I.Ty = Ty;
      I.Dst = Dst;
      I.FImm = V;
      Changed = true;
    };
    auto MakeCopy = [&](Inst &I, Value Src) {
      Value Dst = I.Dst;
      I = Inst();
      I.K = Op::Copy;
      I.Ty = Dst.Ty;
      I.Dst = Dst;
      I.A = Src;
      Changed = true;
    };

    for (Inst &I : B.Insts) {
      // Try to turn a register B operand into an immediate.
      if (usesBReg(I) && I.K != Op::Store && !isFpType(I.B.Ty)) {
        if (auto BV = IntOf(I.B)) {
          I.BIsImm = true;
          I.Imm = asI32(*BV);
          I.B = Value();
          Changed = true;
        }
      }

      switch (I.K) {
      case Op::Add:
      case Op::Sub:
      case Op::Mul:
      case Op::Div:
      case Op::DivU:
      case Op::Rem:
      case Op::RemU:
      case Op::And:
      case Op::Or:
      case Op::Xor:
      case Op::Shl:
      case Op::ShrL:
      case Op::ShrA: {
        auto AV = IntOf(I.A);
        if (AV && I.BIsImm) {
          if (auto R = foldIntBinary(I.K, *AV, I.Imm)) {
            MakeConstInt(I, *R);
            break;
          }
        }
        // A constant, B register, commutative: canonicalize to imm form.
        if (AV && !I.BIsImm &&
            (I.K == Op::Add || I.K == Op::Mul || I.K == Op::And ||
             I.K == Op::Or || I.K == Op::Xor)) {
          I.A = I.B;
          I.B = Value();
          I.BIsImm = true;
          I.Imm = asI32(*AV);
          Changed = true;
        }
        // Algebraic identities with immediate B.
        if (I.BIsImm) {
          int64_t C = I.Imm;
          bool ToCopy = false, ToZero = false;
          switch (I.K) {
          case Op::Add:
          case Op::Sub:
          case Op::Or:
          case Op::Xor:
          case Op::Shl:
          case Op::ShrL:
          case Op::ShrA:
            ToCopy = C == 0;
            break;
          case Op::Mul:
            ToCopy = C == 1;
            ToZero = C == 0;
            break;
          case Op::Div:
          case Op::DivU:
            ToCopy = C == 1;
            break;
          case Op::And:
            ToZero = C == 0;
            ToCopy = asU32(C) == 0xffffffffu;
            break;
          default:
            break;
          }
          if (ToZero)
            MakeConstInt(I, 0);
          else if (ToCopy)
            MakeCopy(I, I.A);
        }
        break;
      }
      case Op::Neg:
        if (auto AV = IntOf(I.A))
          MakeConstInt(I, -asI32(*AV));
        break;
      case Op::Not:
        if (auto AV = IntOf(I.A))
          MakeConstInt(I, ~asI32(*AV));
        break;
      case Op::SignExt8:
        if (auto AV = IntOf(I.A))
          MakeConstInt(I, static_cast<int8_t>(*AV));
        break;
      case Op::SignExt16:
        if (auto AV = IntOf(I.A))
          MakeConstInt(I, static_cast<int16_t>(*AV));
        break;
      case Op::ZeroExt8:
        if (auto AV = IntOf(I.A))
          MakeConstInt(I, static_cast<uint8_t>(*AV));
        break;
      case Op::ZeroExt16:
        if (auto AV = IntOf(I.A))
          MakeConstInt(I, static_cast<uint16_t>(*AV));
        break;
      case Op::FAdd:
      case Op::FSub:
      case Op::FMul:
      case Op::FDiv: {
        auto AV = FpOf(I.A), BV = FpOf(I.B);
        if (AV && BV) {
          double A = *AV, Bv = *BV;
          if (I.Ty == Type::F32) {
            A = static_cast<float>(A);
            Bv = static_cast<float>(Bv);
          }
          if (auto R = foldFpBinary(I.K, A, Bv, I.Ty))
            MakeConstFp(I, *R, I.Ty);
        }
        break;
      }
      case Op::FNeg:
        if (auto AV = FpOf(I.A))
          MakeConstFp(I, I.Ty == Type::F32
                             ? -static_cast<float>(*AV)
                             : -*AV,
                      I.Ty);
        break;
      case Op::IntToFp:
        if (auto AV = IntOf(I.A))
          MakeConstFp(I,
                      I.Ty == Type::F32
                          ? static_cast<float>(asI32(*AV))
                          : static_cast<double>(asI32(*AV)),
                      I.Ty);
        break;
      case Op::FpExt:
        if (auto AV = FpOf(I.A))
          MakeConstFp(I, static_cast<float>(*AV), Type::F64);
        break;
      case Op::FpTrunc:
        if (auto AV = FpOf(I.A))
          MakeConstFp(I, static_cast<float>(*AV), Type::F32);
        break;
      case Op::Cmp:
        if (!isFpType(I.Ty)) {
          auto AV = IntOf(I.A);
          if (AV && I.BIsImm)
            MakeConstInt(I, evalCond(I.Cc, *AV, I.Imm) ? 1 : 0);
        } else {
          auto AV = FpOf(I.A), BV = FpOf(I.B);
          if (AV && BV) {
            bool R;
            double A = *AV, Bv = *BV;
            switch (I.Cc) {
            case Cond::Eq:
              R = A == Bv;
              break;
            case Cond::Ne:
              R = A != Bv;
              break;
            case Cond::Lt:
              R = A < Bv;
              break;
            case Cond::Le:
              R = A <= Bv;
              break;
            case Cond::Gt:
              R = A > Bv;
              break;
            default:
              R = A >= Bv;
              break;
            }
            MakeConstInt(I, R ? 1 : 0);
          }
        }
        break;
      case Op::Br:
        if (!isFpType(I.Ty)) {
          auto AV = IntOf(I.A);
          if (AV && I.BIsImm) {
            int Target = evalCond(I.Cc, *AV, I.Imm) ? I.B1 : I.B2;
            Value None;
            I = Inst();
            I.K = Op::Jmp;
            I.B1 = Target;
            (void)None;
            Changed = true;
          }
        }
        break;
      default:
        break;
      }

      // Update the environment with this instruction's result.
      if (I.hasDst()) {
        E.kill(I.Dst.Id);
        if (I.K == Op::ConstInt)
          E.IntConst[I.Dst.Id] = I.Imm;
        else if (I.K == Op::ConstFp)
          E.FpConst[I.Dst.Id] = I.FImm;
        else if (I.K == Op::Copy) {
          if (!isFpType(I.A.Ty)) {
            if (auto V = IntOf(I.A))
              E.IntConst[I.Dst.Id] = *V;
          } else if (auto V = FpOf(I.A)) {
            E.FpConst[I.Dst.Id] = *V;
          }
        }
      }
    }
  }
  return Changed;
}

bool omni::ir::propagateCopies(Function &F) {
  bool Changed = false;
  for (Block &B : F.Blocks) {
    // CopyOf[v] = w  when  v = copy w  and neither has been redefined.
    std::map<unsigned, Value> CopyOf;
    auto Resolve = [&](Value &V) {
      auto It = CopyOf.find(V.Id);
      if (It != CopyOf.end() && It->second.Ty == V.Ty) {
        V = It->second;
        Changed = true;
      }
    };
    for (Inst &I : B.Insts) {
      // Rewrite uses.
      switch (I.K) {
      case Op::ConstInt:
      case Op::ConstFp:
      case Op::AddrOf:
      case Op::FrameAddr:
      case Op::Jmp:
        break;
      case Op::Call:
        if (I.Sym.empty() && I.A.isValid())
          Resolve(I.A);
        for (Value &V : I.Args)
          Resolve(V);
        break;
      case Op::Ret:
        if (I.A.isValid())
          Resolve(I.A);
        break;
      case Op::Store:
        if (I.Sym.empty() && I.A.isValid())
          Resolve(I.A);
        Resolve(I.B);
        break;
      case Op::Load:
        if (I.Sym.empty() && I.A.isValid())
          Resolve(I.A);
        if (!I.BIsImm && I.B.isValid())
          Resolve(I.B); // indexed load
        break;
      default:
        if (I.A.isValid())
          Resolve(I.A);
        if (usesBReg(I))
          Resolve(I.B);
        break;
      }
      // Update copy map.
      if (I.hasDst()) {
        // Any mapping through the redefined value dies.
        unsigned Dead = I.Dst.Id;
        for (auto It = CopyOf.begin(); It != CopyOf.end();) {
          if (It->first == Dead || It->second.Id == Dead)
            It = CopyOf.erase(It);
          else
            ++It;
        }
        if (I.K == Op::Copy && I.A.Id != I.Dst.Id)
          CopyOf[I.Dst.Id] = I.A;
      }
    }
  }
  return Changed;
}
