//===- ir/StrengthReduce.cpp - mul/div by constant reduction ---------------===//
///
/// Turns multiplications and divisions by constants into cheaper shift/add
/// sequences — one of the machine-independent optimizations the paper lists
/// as profitable on explicit address arithmetic (§3.3).

#include "ir/Passes.h"

using namespace omni;
using namespace omni::ir;

namespace {

bool isPowerOfTwo(uint32_t X) { return X != 0 && (X & (X - 1)) == 0; }

unsigned log2u(uint32_t X) {
  unsigned L = 0;
  while (X >>= 1)
    ++L;
  return L;
}

} // namespace

bool omni::ir::reduceStrength(Function &F) {
  bool Changed = false;
  for (Block &B : F.Blocks) {
    for (size_t II = 0; II < B.Insts.size(); ++II) {
      Inst &I = B.Insts[II];
      if (!I.BIsImm)
        continue;

      if (I.K == Op::Mul) {
        int64_t C = I.Imm;
        if (C == -1) {
          I.K = Op::Neg;
          I.BIsImm = false;
          I.Imm = 0;
          Changed = true;
          continue;
        }
        if (C > 0 && isPowerOfTwo(static_cast<uint32_t>(C))) {
          I.K = Op::Shl;
          I.Imm = log2u(static_cast<uint32_t>(C));
          Changed = true;
          continue;
        }
        // 2^k + 1 (3, 5, 9, 17, ...): t = a << k; dst = t + a.
        if (C > 2 && isPowerOfTwo(static_cast<uint32_t>(C - 1))) {
          Value T = F.newValue(Type::I32);
          Inst Shift;
          Shift.K = Op::Shl;
          Shift.Ty = Type::I32;
          Shift.Dst = T;
          Shift.A = I.A;
          Shift.BIsImm = true;
          Shift.Imm = log2u(static_cast<uint32_t>(C - 1));
          Inst Add;
          Add.K = Op::Add;
          Add.Ty = Type::I32;
          Add.Dst = I.Dst;
          Add.A = T;
          Add.B = I.A;
          B.Insts[II] = Shift;
          B.Insts.insert(B.Insts.begin() + II + 1, Add);
          Changed = true;
          continue;
        }
        // 2^k - 1 (7, 15, 31, ...): t = a << k; dst = t - a.
        if (C > 2 && isPowerOfTwo(static_cast<uint32_t>(C + 1))) {
          Value T = F.newValue(Type::I32);
          Inst Shift;
          Shift.K = Op::Shl;
          Shift.Ty = Type::I32;
          Shift.Dst = T;
          Shift.A = I.A;
          Shift.BIsImm = true;
          Shift.Imm = log2u(static_cast<uint32_t>(C + 1));
          Inst Sub;
          Sub.K = Op::Sub;
          Sub.Ty = Type::I32;
          Sub.Dst = I.Dst;
          Sub.A = T;
          Sub.B = I.A;
          B.Insts[II] = Shift;
          B.Insts.insert(B.Insts.begin() + II + 1, Sub);
          Changed = true;
          continue;
        }
        continue;
      }

      if (I.K == Op::DivU) {
        int64_t C = I.Imm;
        if (C > 0 && isPowerOfTwo(static_cast<uint32_t>(C))) {
          I.K = Op::ShrL;
          I.Imm = log2u(static_cast<uint32_t>(C));
          Changed = true;
        }
        continue;
      }

      if (I.K == Op::RemU) {
        int64_t C = I.Imm;
        if (C > 0 && isPowerOfTwo(static_cast<uint32_t>(C))) {
          I.K = Op::And;
          I.Imm = C - 1;
          Changed = true;
        }
        continue;
      }

      if (I.K == Op::Div) {
        int64_t C = I.Imm;
        if (C > 1 && isPowerOfTwo(static_cast<uint32_t>(C))) {
          // Signed division by 2^k with round-toward-zero:
          //   t1 = a >> 31            (all ones when negative)
          //   t2 = t1 >>> (32-k)      (bias = 2^k - 1 when negative)
          //   t3 = a + t2
          //   dst = t3 >> k
          unsigned K = log2u(static_cast<uint32_t>(C));
          Value T1 = F.newValue(Type::I32);
          Value T2 = F.newValue(Type::I32);
          Value T3 = F.newValue(Type::I32);
          Inst S1;
          S1.K = Op::ShrA;
          S1.Ty = Type::I32;
          S1.Dst = T1;
          S1.A = I.A;
          S1.BIsImm = true;
          S1.Imm = 31;
          Inst S2;
          S2.K = Op::ShrL;
          S2.Ty = Type::I32;
          S2.Dst = T2;
          S2.A = T1;
          S2.BIsImm = true;
          S2.Imm = 32 - K;
          Inst S3;
          S3.K = Op::Add;
          S3.Ty = Type::I32;
          S3.Dst = T3;
          S3.A = I.A;
          S3.B = T2;
          Inst S4;
          S4.K = Op::ShrA;
          S4.Ty = Type::I32;
          S4.Dst = I.Dst;
          S4.A = T3;
          S4.BIsImm = true;
          S4.Imm = K;
          B.Insts[II] = S1;
          B.Insts.insert(B.Insts.begin() + II + 1, {S2, S3, S4});
          II += 3;
          Changed = true;
        }
        continue;
      }
    }
  }
  return Changed;
}
