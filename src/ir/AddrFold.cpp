//===- ir/AddrFold.cpp - indexed addressing-mode selection ------------------===//
///
/// Rewrites "t = base + index; v = load [t+0]" (t single-use, same block)
/// into an indexed load — OmniVM's reg+reg addressing mode (§3.4 of the
/// paper: "the OmniVM indexed addressing mode maps one-to-one on the
/// PowerPC but requires an additional add instruction on the Mips").
/// The dead add is left for DCE.

#include "ir/Analysis.h"
#include "ir/Passes.h"

using namespace omni;
using namespace omni::ir;

bool omni::ir::foldIndexedAddressing(Function &F) {
  // Use counts over the whole function (non-SSA: defs too).
  std::vector<unsigned> Uses(F.NextValueId, 0);
  std::vector<unsigned> Defs(F.NextValueId, 0);
  for (const Block &B : F.Blocks)
    for (const Inst &I : B.Insts) {
      forEachUse(I, [&](const Value &V) { ++Uses[V.Id]; });
      if (I.hasDst())
        ++Defs[I.Dst.Id];
    }

  bool Changed = false;
  for (Block &B : F.Blocks) {
    for (size_t AI = 0; AI < B.Insts.size(); ++AI) {
      Inst &AddI = B.Insts[AI];
      if (AddI.K != Op::Add || AddI.BIsImm || !AddI.hasDst())
        continue;
      unsigned T = AddI.Dst.Id;
      if (Uses[T] != 1 || Defs[T] != 1)
        continue;
      unsigned X = AddI.A.Id, Y = AddI.B.Id;
      // Find the single use within this block; bail on interference.
      for (size_t LI = AI + 1; LI < B.Insts.size(); ++LI) {
        Inst &LoadI = B.Insts[LI];
        bool UsesT = false;
        forEachUse(LoadI, [&](const Value &V) {
          if (V.Id == T)
            UsesT = true;
        });
        if (UsesT) {
          if (LoadI.K == Op::Load && LoadI.Sym.empty() && !LoadI.FrameRel &&
              LoadI.A.isValid() && LoadI.A.Id == T && LoadI.Imm == 0) {
            // Rewrite to the indexed form.
            LoadI.A = AddI.A;
            LoadI.B = AddI.B;
            LoadI.BIsImm = false;
            // The add is now dead (DCE removes it).
            ++Uses[X];
            ++Uses[Y];
            --Uses[T];
            Changed = true;
          }
          break;
        }
        // Calls and stores don't redefine registers we track, but any
        // redefinition of the operands or t kills the opportunity.
        if (LoadI.hasDst() &&
            (LoadI.Dst.Id == X || LoadI.Dst.Id == Y || LoadI.Dst.Id == T))
          break;
        if (LoadI.isTerminator())
          break;
      }
    }
  }
  if (Changed)
    eliminateDeadCode(F);
  return Changed;
}
