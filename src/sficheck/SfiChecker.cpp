//===- sficheck/SfiChecker.cpp ---------------------------------------------===//

#include "sficheck/SfiChecker.h"

#include "support/Format.h"
#include "vm/AddressSpace.h"
#include "vm/Opcode.h"

#include <algorithm>
#include <type_traits>

using namespace omni;
using namespace omni::sficheck;
using target::AddrMode;
using target::TargetKind;
using target::TInstr;
using target::TOp;

const char *omni::sficheck::getObKindName(ObKind K) {
  switch (K) {
  case ObKind::Store:
    return "store";
  case ObKind::Load:
    return "load";
  case ObKind::JumpIndirect:
    return "jump-indirect";
  case ObKind::BranchDirect:
    return "branch-direct";
  case ObKind::SpExit:
    return "sp-exit";
  case ObKind::HoldExit:
    return "hold-exit";
  case ObKind::Layout:
    return "layout";
  }
  return "?";
}

const char *omni::sficheck::getVerdictName(Verdict V) {
  switch (V) {
  case Verdict::Proved:
    return "proved";
  case Verdict::Assumed:
    return "assumed";
  case Verdict::Failed:
    return "FAILED";
  }
  return "?";
}

namespace {

/// All four targets address at most 32 integer registers.
constexpr unsigned NumRegs = 32;

/// Abstract value of one register. Masked/InSeg carry provenance: the
/// register they are the sandboxed image of, and that register's
/// def-generation when the mask was applied — redefining either side
/// makes the generation counters disagree and the provenance dies.
struct AbsVal {
  enum Kind : uint8_t { Unknown, Const, Masked, InSeg } K = Unknown;
  uint32_t C = 0; ///< constant value (K == Const)
  int From = -1;  ///< provenance register (K == Masked/InSeg), -1 none
  uint32_t Gen = 0;

  static AbsVal unknown() { return AbsVal(); }
  static AbsVal cst(uint32_t V) {
    AbsVal A;
    A.K = Const;
    A.C = V;
    return A;
  }
  static AbsVal masked(int From, uint32_t Gen) {
    AbsVal A;
    A.K = Masked;
    A.From = From;
    A.Gen = Gen;
    return A;
  }
  static AbsVal inseg(int From, uint32_t Gen) {
    AbsVal A;
    A.K = InSeg;
    A.From = From;
    A.Gen = Gen;
    return A;
  }
};

/// Per-block dataflow state: abstract values plus def-generation
/// counters. Generations are block-local; provenance never crosses a
/// block boundary (block entry states carry none).
struct RegState {
  AbsVal V[NumRegs];
  uint32_t Gen[NumRegs] = {};
};

/// One recovered basic block: body instructions up to and including an
/// optional trailing branch, plus the branch's delay slot.
struct Block {
  uint32_t Start = 0;
  uint32_t End = 0;    ///< one past the last body instruction (incl. branch)
  int32_t Branch = -1; ///< trailing branch index, -1 for fallthrough end
  int32_t Slot = -1;   ///< delay-slot index, -1 none
};

/// The integer register \p I defines, or -1. Loads of fp values and the
/// memory-linked x86 call write no integer register. Getting this exactly
/// right is itself a soundness obligation: an fp load (or the sp-sandbox
/// sequence around one) must NOT count as defining integer Rd — a stale
/// abstract value would survive an instruction that does clobber the fp
/// file, and conversely treating it as an integer def would bump Rd's
/// generation and spuriously kill live provenance. tests/sficheck.cpp
/// pins both directions.
int intDef(const target::TargetInfo &TI, const TInstr &I) {
  switch (I.Op) {
  case TOp::MovImm:
  case TOp::LoadImmHi:
  case TOp::OrImmLo:
  case TOp::MovReg:
  case TOp::Lea:
  case TOp::Add:
  case TOp::Sub:
  case TOp::Mul:
  case TOp::Div:
  case TOp::DivU:
  case TOp::Rem:
  case TOp::RemU:
  case TOp::And:
  case TOp::Or:
  case TOp::Xor:
  case TOp::Shl:
  case TOp::ShrL:
  case TOp::ShrA:
  case TOp::SetCond:
  case TOp::CvtFpToInt:
    return static_cast<int>(I.Rd);
  case TOp::Load:
    return I.FpVal ? -1 : static_cast<int>(I.Rd);
  case TOp::CallDirect:
  case TOp::CallIndirect:
    return TI.LinkIsMemory ? -1 : static_cast<int>(I.Rd);
  default:
    return -1;
  }
}

class Checker {
public:
  Checker(TargetKind Kind, const target::TargetCode &Code,
          const translate::SegmentLayout &Seg, const CheckOptions &Opts)
      : Kind(Kind), TI(target::getTargetInfo(Kind)), Code(Code), Seg(Seg),
        Opts(Opts), N(static_cast<uint32_t>(Code.Code.size())) {
    // Stores and indirect jumps are enforced exactly where the translator
    // claims to sandbox them: SFI on and not x86, where hardware
    // segmentation replaces the instruction sequences.
    EnforceSfi = Opts.Sfi && Kind != TargetKind::X86;
    SpReg = Code.VmIntRegMap[vm::RegSp];
    if (SpReg < 0 || SpReg >= static_cast<int>(NumRegs))
      SpReg = -1;
  }

  CheckResult run() {
    if (!vm::AddressSpace::validLayout(Seg.Base, Seg.Size)) {
      record(ObKind::Layout, Verdict::Failed, 0,
             formatStr("segment base 0x%08x / size 0x%x is not a valid "
                       "sandbox layout; nothing is provable",
                       Seg.Base, Seg.Size));
      return std::move(Res);
    }
    if (N == 0)
      return std::move(Res);
    if (Code.Entry >= N) {
      record(ObKind::Layout, Verdict::Failed, 0,
             formatStr("entry %u outside the %u-instruction image",
                       Code.Entry, N));
      return std::move(Res);
    }
    // Indirect jumps resolve VM-level targets through this map, so map
    // soundness is itself an obligation: every entry must land inside
    // the image or the map is a way out of it.
    for (size_t V = 0; V < Code.VmToNative.size(); ++V)
      if (Code.VmToNative[V] >= N)
        record(ObKind::Layout, Verdict::Failed, 0,
               formatStr("vm target map entry %zu -> native %u outside "
                         "the %u-instruction image",
                         V, Code.VmToNative[V], N));
    if (!Res.Ok)
      return std::move(Res);
    findLeaders();
    buildBlocks();
    deriveInvariants();
    for (const Block &B : Blocks)
      checkBlock(B);
    return std::move(Res);
  }

private:
  /// containsRange against the segment, overflow safe (Base is aligned to
  /// the power-of-two Size — checked up front).
  bool inSegment(uint32_t Addr, uint32_t Len) const {
    if ((Addr & ~(Seg.Size - 1)) != Seg.Base)
      return false;
    return Len <= Seg.Size - (Addr - Seg.Base);
  }

  AbsVal val(const RegState &S, unsigned R) const {
    if (TI.HasZeroReg && R == TI.ZeroReg)
      return AbsVal::cst(0); // hardwired, mirrors the simulator
    if (R >= NumRegs)
      return AbsVal::unknown();
    return S.V[R];
  }

  void def(RegState &S, unsigned R, AbsVal A) const {
    if (R >= NumRegs || (TI.HasZeroReg && R == TI.ZeroReg))
      return; // writes to the hardwired zero register are discarded
    ++S.Gen[R];
    S.V[R] = A;
  }

  void count(Verdict V) {
    switch (V) {
    case Verdict::Proved:
      ++Res.Proved;
      break;
    case Verdict::Assumed:
      ++Res.Assumed;
      break;
    case Verdict::Failed:
      ++Res.Failed;
      Res.Ok = false;
      break;
    }
  }

  /// Whether the detail string for verdict \p V is kept anywhere: a
  /// failure always is (FirstFailure), the rest only when the caller asked
  /// for the full obligation list.
  bool wantDetail(Verdict V) const {
    return V == Verdict::Failed || Opts.RecordObligations;
  }

  void push(ObKind K, Verdict V, uint32_t Native, std::string Detail) {
    Obligation Ob;
    Ob.Kind = K;
    Ob.V = V;
    Ob.NativeIndex = Native;
    Ob.VmIndex = Native < N ? Code.Code[Native].VmIndex : -1;
    Ob.Detail = std::move(Detail);
    if (V == Verdict::Failed && Res.FirstFailure.empty())
      Res.FirstFailure =
          formatStr("sfi proof failed: %s at native #%u (vm %d): %s",
                    getObKindName(K), Native, Ob.VmIndex, Ob.Detail.c_str());
    Res.Obligations.push_back(std::move(Ob));
  }

  void record(ObKind K, Verdict V, uint32_t Native, std::string Detail) {
    count(V);
    if (wantDetail(V))
      push(K, V, Native, std::move(Detail));
  }

  void record(ObKind K, Verdict V, uint32_t Native, const char *Detail) {
    count(V);
    if (wantDetail(V))
      push(K, V, Native, std::string(Detail));
  }

  /// Lazy variant for the hot path: the checker runs on every load with
  /// RecordObligations off, where detail strings for non-failures are
  /// dropped on the floor — so their formatting must not happen at all.
  template <typename DetailFn,
            typename = std::enable_if_t<std::is_invocable_v<DetailFn &>>>
  void record(ObKind K, Verdict V, uint32_t Native, DetailFn &&MakeDetail) {
    count(V);
    if (wantDetail(V))
      push(K, V, Native, MakeDetail());
  }

  Verdict unproven(bool Enforced) const {
    return Enforced ? Verdict::Failed : Verdict::Assumed;
  }

  /// Leaders: the entry, every indirect-jump landing site (every
  /// VmToNative entry — the simulator routes any VM-level jump value
  /// through that table), every direct branch target, and the
  /// fall-through point after each branch (plus its delay slot).
  void findLeaders() {
    Leader.assign(N, false);
    auto mark = [&](uint32_t Idx) {
      if (Idx < N)
        Leader[Idx] = true;
    };
    mark(Code.Entry);
    for (uint32_t Native : Code.VmToNative)
      mark(Native);
    for (uint32_t I = 0; I < N; ++I) {
      const TInstr &T = Code.Code[I];
      if (!T.isBranch())
        continue;
      if (T.Op != TOp::CallIndirect && T.Op != TOp::JumpIndirect &&
          T.Target >= 0)
        mark(static_cast<uint32_t>(T.Target));
      mark(I + (TI.HasDelaySlot ? 2 : 1));
    }
  }

  /// Blocks run from a leader to the first branch (which owns its delay
  /// slot) or to the next leader. A leader landing inside a branch+slot
  /// pair still gets its own (overlapping) block — conservative for
  /// hostile images; the translator never produces such a target.
  void buildBlocks() {
    Blocks.clear();
    for (uint32_t Start = 0; Start < N; ++Start) {
      if (!Leader[Start])
        continue;
      Block B;
      B.Start = Start;
      uint32_t I = Start;
      for (; I < N; ++I) {
        if (Code.Code[I].isBranch()) {
          B.Branch = static_cast<int32_t>(I);
          if (TI.HasDelaySlot && I + 1 < N)
            B.Slot = static_cast<int32_t>(I + 1);
          break;
        }
        if (I + 1 >= N || Leader[I + 1])
          break;
      }
      B.End = std::min<uint32_t>(I + 1, N);
      Blocks.push_back(B);
    }
  }

  /// Derives the invariant register set from the entry block itself
  /// instead of trusting the target's register conventions: a register is
  /// invariant iff the entry block leaves a constant in it, nothing else
  /// in the image defines it, and the module cannot reach it through the
  /// VM register map (host calls write VM-mapped registers). A
  /// bit-flipped prologue constant yields a different (or no) invariant
  /// and the downstream mask/base obligations fail naturally.
  void deriveInvariants() {
    const Block *Entry = nullptr;
    for (const Block &B : Blocks)
      if (B.Start == Code.Entry) {
        Entry = &B;
        break;
      }
    if (!Entry)
      return;
    uint32_t EntryEnd = Entry->Slot >= 0
                            ? static_cast<uint32_t>(Entry->Slot) + 1
                            : Entry->End;

    // Indirect control flow into the middle of the entry block could skip
    // the constant setup; derive nothing in that case. The translator
    // never emits such a mapping (VmToNative points past the prologue).
    for (uint32_t Native : Code.VmToNative)
      if (Native > Entry->Start && Native < EntryEnd)
        return;

    RegState S;
    for (uint32_t I = Entry->Start; I < EntryEnd && I < N; ++I)
      transfer(S, Code.Code[I], I, /*Check=*/false);

    bool DefinedOutside[NumRegs] = {};
    for (uint32_t I = 0; I < N; ++I) {
      if (I >= Entry->Start && I < EntryEnd)
        continue;
      int Rd = intDef(TI, Code.Code[I]);
      if (Rd >= 0 && Rd < static_cast<int>(NumRegs))
        DefinedOutside[Rd] = true;
    }
    bool VmMapped[NumRegs] = {};
    for (int M : Code.VmIntRegMap)
      if (M >= 0 && M < static_cast<int>(NumRegs))
        VmMapped[M] = true;

    for (unsigned R = 0; R < NumRegs; ++R)
      if (S.V[R].K == AbsVal::Const && !DefinedOutside[R] && !VmMapped[R]) {
        Invariant[R] = true;
        InvariantVal[R] = S.V[R].C;
      }

    // Held registers — the sp induction generalized to the SFI
    // optimizer's hold register. A register the prologue leaves at an
    // in-segment constant, that the module cannot reach through the VM
    // register map, but that later code *does* redefine (the hoisted
    // preheaders re-sandbox it) is "held": every block may assume it
    // in-segment on entry, and in exchange every block exit owes a
    // HoldExit obligation that it still is. The prologue constant is the
    // induction base, the exits are the induction step.
    for (unsigned R = 0; R < NumRegs; ++R)
      if (S.V[R].K == AbsVal::Const && inSegment(S.V[R].C, 1) &&
          DefinedOutside[R] && !VmMapped[R] &&
          static_cast<int>(R) != SpReg)
        Held[R] = true;
  }

  /// Conservative entry state. Every non-entry block start is potentially
  /// reachable through an indirect jump, so all of them get the same
  /// state: derived invariants plus the inductive sp assumption (the
  /// runtime reset puts sp in the segment; every checked block exit keeps
  /// it there). The entry block runs before the prologue has established
  /// anything, so it starts from sp only.
  RegState entryState(uint32_t BlockStart) const {
    RegState S;
    if (BlockStart != Code.Entry)
      for (unsigned R = 0; R < NumRegs; ++R) {
        if (Invariant[R])
          S.V[R] = AbsVal::cst(InvariantVal[R]);
        else if (Held[R])
          S.V[R] = AbsVal::inseg(-1, 0); // inductive, like sp below
      }
    if (SpReg >= 0)
      S.V[SpReg] = AbsVal::inseg(-1, 0);
    return S;
  }

  /// Constant folding for the simple ALU shapes that appear in address
  /// and sandbox sequences. Anything else degrades to Unknown.
  AbsVal evalAlu(const RegState &S, const TInstr &I) const {
    if (I.MemOperand)
      return AbsVal::unknown(); // x86 memory-operand source
    AbsVal A = val(S, I.Rs1);
    if (A.K != AbsVal::Const)
      return AbsVal::unknown();
    uint32_t B;
    if (I.UsesImm) {
      B = static_cast<uint32_t>(I.Imm);
    } else {
      AbsVal Bv = val(S, I.Rs2);
      if (Bv.K != AbsVal::Const)
        return AbsVal::unknown();
      B = Bv.C;
    }
    switch (I.Op) {
    case TOp::Add:
      return AbsVal::cst(A.C + B);
    case TOp::Sub:
      return AbsVal::cst(A.C - B);
    case TOp::Xor:
      return AbsVal::cst(A.C ^ B);
    case TOp::Shl:
      return AbsVal::cst(A.C << (B & 31));
    case TOp::ShrL:
      return AbsVal::cst(A.C >> (B & 31));
    case TOp::ShrA:
      return AbsVal::cst(static_cast<uint32_t>(
          static_cast<int32_t>(A.C) >> (B & 31)));
    default:
      return AbsVal::unknown();
    }
  }

  AbsVal evalAnd(const RegState &S, const TInstr &I) const {
    if (I.MemOperand)
      return AbsVal::unknown();
    uint32_t Mask = Seg.Size - 1;
    AbsVal A = val(S, I.Rs1);
    if (I.UsesImm) {
      if (A.K == AbsVal::Const)
        return AbsVal::cst(A.C & static_cast<uint32_t>(I.Imm));
      if (static_cast<uint32_t>(I.Imm) == Mask && I.Rs1 < NumRegs)
        return AbsVal::masked(static_cast<int>(I.Rs1), S.Gen[I.Rs1]);
      return AbsVal::unknown();
    }
    AbsVal B = val(S, I.Rs2);
    if (A.K == AbsVal::Const && B.K == AbsVal::Const)
      return AbsVal::cst(A.C & B.C);
    // `and x, mask` in either operand order; the result is the masked
    // image of the other register.
    if (B.K == AbsVal::Const && B.C == Mask && I.Rs1 < NumRegs)
      return AbsVal::masked(static_cast<int>(I.Rs1), S.Gen[I.Rs1]);
    if (A.K == AbsVal::Const && A.C == Mask && I.Rs2 < NumRegs)
      return AbsVal::masked(static_cast<int>(I.Rs2), S.Gen[I.Rs2]);
    return AbsVal::unknown();
  }

  AbsVal evalOr(const RegState &S, const TInstr &I) const {
    if (I.MemOperand)
      return AbsVal::unknown();
    AbsVal A = val(S, I.Rs1);
    if (I.UsesImm) {
      if (A.K == AbsVal::Const)
        return AbsVal::cst(A.C | static_cast<uint32_t>(I.Imm));
      if (A.K == AbsVal::Masked && static_cast<uint32_t>(I.Imm) == Seg.Base)
        return AbsVal::inseg(A.From, A.Gen);
      return AbsVal::unknown();
    }
    AbsVal B = val(S, I.Rs2);
    if (A.K == AbsVal::Const && B.K == AbsVal::Const)
      return AbsVal::cst(A.C | B.C);
    // `or masked, base`: sound because the base is aligned to the
    // power-of-two size, so masked | base == base + masked.
    if (A.K == AbsVal::Masked && B.K == AbsVal::Const && B.C == Seg.Base)
      return AbsVal::inseg(A.From, A.Gen);
    if (B.K == AbsVal::Masked && A.K == AbsVal::Const && A.C == Seg.Base)
      return AbsVal::inseg(B.From, B.Gen);
    return AbsVal::unknown();
  }

  /// Memory obligation: the access at \p Idx is confined to the segment.
  void checkMemory(const RegState &S, const TInstr &I, uint32_t Idx) {
    bool IsStore = I.Op == TOp::Store;
    bool Enforced = EnforceSfi && (IsStore || Opts.SfiReads);
    ObKind K = IsStore ? ObKind::Store : ObKind::Load;
    unsigned W = ir::memWidthBytes(I.Width);

    auto resolved = [&](uint32_t Addr) {
      if (inSegment(Addr, W))
        record(K, Verdict::Proved, Idx, [&] {
          return formatStr("address 0x%08x statically in segment", Addr);
        });
      else
        record(K, unproven(Enforced), Idx, [&] {
          return formatStr("address 0x%08x statically outside segment", Addr);
        });
    };

    switch (I.Mode) {
    case AddrMode::Abs:
      resolved(static_cast<uint32_t>(I.Imm));
      return;
    case AddrMode::BaseImm: {
      AbsVal B = val(S, I.Rs1);
      if (B.K == AbsVal::Const) {
        resolved(B.C + static_cast<uint32_t>(I.Imm));
        return;
      }
      if (B.K == AbsVal::InSeg) {
        if (I.Imm == 0) {
          record(K, Verdict::Proved, Idx, "sandboxed base, zero offset");
          return;
        }
        if (I.Imm >= 0 &&
            static_cast<uint32_t>(I.Imm) + W <= vm::GuardZoneSize) {
          // In-segment base + small positive offset: the whole access
          // lands in the segment or in the guard zone immediately above
          // it, which the address space leaves unmapped
          // (vm::GuardZoneSize) so the runtime bounds check traps it.
          // Contained either way — a proof, not an assumption. The
          // translator's sp guard-zone elision and the SFI optimizer's
          // shared guards both rest on exactly this bound.
          record(K, Verdict::Proved, Idx, [&] {
            return formatStr("in-segment base + %d rides the guard zone "
                             "(width %u)",
                             I.Imm, W);
          });
          return;
        }
      }
      record(K, unproven(Enforced), Idx, [&] {
        return formatStr("base r%u not provably sandboxed", I.Rs1);
      });
      return;
    }
    case AddrMode::BaseIndex: {
      AbsVal A = val(S, I.Rs1);
      AbsVal B = val(S, I.Rs2);
      if (A.K == AbsVal::Const && B.K == AbsVal::Const) {
        resolved(A.C + B.C);
        return;
      }
      // The PPC sandbox idiom: [masked + base] in one indexed access.
      if ((A.K == AbsVal::Masked && B.K == AbsVal::Const &&
           B.C == Seg.Base) ||
          (B.K == AbsVal::Masked && A.K == AbsVal::Const &&
           A.C == Seg.Base)) {
        record(K, Verdict::Proved, Idx, "masked index + segment base");
        return;
      }
      record(K, unproven(Enforced), Idx, [&] {
        return formatStr("indexed address r%u + r%u not provably sandboxed",
                         I.Rs1, I.Rs2);
      });
      return;
    }
    case AddrMode::BaseIndexImm: {
      AbsVal A = val(S, I.Rs1);
      AbsVal B = val(S, I.Rs2);
      if (A.K == AbsVal::Const && B.K == AbsVal::Const) {
        resolved(A.C + B.C + static_cast<uint32_t>(I.Imm));
        return;
      }
      record(K, unproven(Enforced), Idx,
             "base+index+imm address not provably sandboxed");
      return;
    }
    }
  }

  /// Control obligations. Direct branch targets are always enforced: the
  /// target is static, so there is no sandbox to fall back on and every
  /// target (x86 included) can be held to it. Indirect jumps require a
  /// live sandboxed image of the jump register.
  void checkBranch(const RegState &S, const TInstr &I, uint32_t Idx) {
    switch (I.Op) {
    case TOp::Branch:
    case TOp::CmpBranch:
    case TOp::BranchCC:
    case TOp::FBranchCC:
    case TOp::BranchDec:
    case TOp::CallDirect: {
      bool InBounds = I.Target >= 0 && static_cast<uint32_t>(I.Target) < N;
      record(ObKind::BranchDirect,
             InBounds ? Verdict::Proved : Verdict::Failed, Idx, [&] {
               return InBounds
                          ? formatStr("target %d in [0, %u)", I.Target, N)
                          : formatStr("target %d outside the "
                                      "%u-instruction image",
                                      I.Target, N);
             });
      return;
    }
    case TOp::CallIndirect:
    case TOp::JumpIndirect: {
      // The jump goes through the original register; the sandbox computes
      // the masked image into a dedicated register just before it (the
      // `or` half may sit in the delay slot, so Masked suffices). Accept
      // any register holding a fresh Masked/InSeg image of the operand.
      bool Found = false;
      if (I.Rs1 < NumRegs) {
        AbsVal T = val(S, I.Rs1);
        // A constant target is statically resolved: the VM target map
        // (whose entries are all proved in-image up front) either maps it
        // into the image or the resolution deterministically traps. Either
        // way execution cannot leave the translation.
        if (T.K == AbsVal::Const) {
          record(ObKind::JumpIndirect, Verdict::Proved, Idx, [&] {
            return T.C < Code.VmToNative.size()
                       ? formatStr("constant vm target %u resolves in the "
                                   "target map",
                                   T.C)
                       : formatStr("constant vm target 0x%08x provably "
                                   "traps",
                                   T.C);
          });
          return;
        }
        Found = T.K == AbsVal::Masked || T.K == AbsVal::InSeg;
        for (unsigned R = 0; !Found && R < NumRegs; ++R) {
          const AbsVal &V = S.V[R];
          Found = (V.K == AbsVal::Masked || V.K == AbsVal::InSeg) &&
                  V.From == static_cast<int>(I.Rs1) && V.Gen == S.Gen[I.Rs1];
        }
        if (!Found && CurSlot >= 0 &&
            static_cast<uint32_t>(CurSlot) != Idx &&
            !Code.Code[CurSlot].isBranch()) {
          // The delay slot executes before the transfer completes, so a
          // sandbox established there still covers this jump (the
          // scheduler may move the whole mask into the slot once the
          // optimizer elides the `or`). Soundness rides on provenance:
          // only images of the operand value the branch reads — the
          // pre-slot generation of Rs1 — are accepted, so a slot that
          // redefines the operand can never discharge the obligation.
          RegState S2 = S;
          transfer(S2, Code.Code[CurSlot], static_cast<uint32_t>(CurSlot),
                   /*Check=*/false);
          for (unsigned R = 0; !Found && R < NumRegs; ++R) {
            const AbsVal &V = S2.V[R];
            Found = (V.K == AbsVal::Masked || V.K == AbsVal::InSeg) &&
                    V.From == static_cast<int>(I.Rs1) &&
                    V.Gen == S.Gen[I.Rs1];
          }
        }
      }
      record(ObKind::JumpIndirect,
             Found ? Verdict::Proved : unproven(EnforceSfi), Idx, [&] {
               return Found ? formatStr("fresh sandboxed image of r%u is "
                                        "live",
                                        I.Rs1)
                            : formatStr("no live sandboxed image of r%u",
                                        I.Rs1);
             });
      return;
    }
    default:
      return;
    }
  }

  /// Abstract effect of one instruction; obligations are evaluated first
  /// against the pre-state when \p Check is set.
  void transfer(RegState &S, const TInstr &I, uint32_t Idx, bool Check) {
    if (Check) {
      if (I.Op == TOp::Load || I.Op == TOp::Store || I.MemOperand)
        checkMemory(S, I, Idx);
      if (I.isBranch())
        checkBranch(S, I, Idx);
    }
    switch (I.Op) {
    case TOp::MovImm:
    case TOp::LoadImmHi:
      def(S, I.Rd, AbsVal::cst(static_cast<uint32_t>(I.Imm)));
      break;
    case TOp::OrImmLo: {
      AbsVal A = val(S, I.Rs1);
      def(S, I.Rd,
          A.K == AbsVal::Const
              ? AbsVal::cst(A.C | static_cast<uint32_t>(I.Imm))
              : AbsVal::unknown());
      break;
    }
    case TOp::MovReg:
      def(S, I.Rd, val(S, I.Rs1));
      break;
    case TOp::And:
      def(S, I.Rd, evalAnd(S, I));
      break;
    case TOp::Or:
      def(S, I.Rd, evalOr(S, I));
      break;
    case TOp::Add:
    case TOp::Sub:
    case TOp::Xor:
    case TOp::Shl:
    case TOp::ShrL:
    case TOp::ShrA:
      def(S, I.Rd, evalAlu(S, I));
      break;
    case TOp::Lea:
    case TOp::Mul:
    case TOp::Div:
    case TOp::DivU:
    case TOp::Rem:
    case TOp::RemU:
    case TOp::SetCond:
    case TOp::CvtFpToInt:
      def(S, I.Rd, AbsVal::unknown());
      break;
    case TOp::Load:
      if (!I.FpVal)
        def(S, I.Rd, AbsVal::unknown());
      break;
    case TOp::CallDirect:
    case TOp::CallIndirect:
      if (!TI.LinkIsMemory)
        def(S, I.Rd, AbsVal::unknown());
      break;
    case TOp::HostCall:
      // The host writes VM registers through the register map; nothing
      // else is reachable from a gate. Conservatively clobber everything
      // non-invariant, but keep the inductive sp fact (no standard gate
      // moves the stack pointer) and the held registers (not VM-mapped,
      // so the gate cannot reach them either).
      for (unsigned R = 0; R < NumRegs; ++R) {
        if (Invariant[R])
          continue;
        def(S, R, (static_cast<int>(R) == SpReg || Held[R])
                      ? AbsVal::inseg(-1, 0)
                      : AbsVal::unknown());
      }
      break;
    default:
      break; // stores, compares, fp ops, traps: no integer defs
    }
  }

  /// The sp discipline: on every edge into another block the sp-mapped
  /// register must still be provably inside the segment — that is the
  /// induction step behind the guard-zone exemption for sp-relative
  /// accesses. Violations are recorded; healthy exits add no obligation
  /// noise.
  void checkSpExit(const RegState &S, uint32_t AtIdx, const char *Why) {
    if (SpReg < 0 || !EnforceSfi)
      return;
    const AbsVal &V = S.V[SpReg];
    if (V.K == AbsVal::InSeg ||
        (V.K == AbsVal::Const && inSegment(V.C, 1)))
      return;
    record(ObKind::SpExit, Verdict::Failed, AtIdx,
           formatStr("stack pointer not provably in segment at %s", Why));
  }

  /// The induction step for held registers: every edge into another block
  /// must leave each held register provably in-segment, or the blanket
  /// in-segment entry assumption would be unsound.
  void checkHeldExit(const RegState &S, uint32_t AtIdx, const char *Why) {
    if (!EnforceSfi)
      return;
    for (unsigned R = 0; R < NumRegs; ++R) {
      if (!Held[R])
        continue;
      const AbsVal &V = S.V[R];
      if (V.K == AbsVal::InSeg ||
          (V.K == AbsVal::Const && inSegment(V.C, 1)))
        continue;
      record(ObKind::HoldExit, Verdict::Failed, AtIdx,
             formatStr("held register r%u not provably in segment at %s", R,
                       Why));
    }
  }

  void checkBlock(const Block &B) {
    CurSlot = B.Slot;
    RegState S = entryState(B.Start);
    for (uint32_t I = B.Start; I < B.End; ++I)
      transfer(S, Code.Code[I], I, /*Check=*/true);
    CurSlot = -1;

    if (B.Branch < 0) {
      // Fallthrough into the next leader; falling off the end of the
      // image faults in the simulator (contained), no edge to check.
      if (B.End < N) {
        checkSpExit(S, B.End - 1, "block fall-through");
        checkHeldExit(S, B.End - 1, "block fall-through");
      }
      return;
    }

    const TInstr &Br = Code.Code[B.Branch];
    RegState Taken = S;
    RegState Fall = S;
    if (B.Slot >= 0) {
      const TInstr &Sl = Code.Code[B.Slot];
      // A branch in a delay slot never executes in the simulator.
      if (!Sl.isBranch()) {
        transfer(Taken, Sl, static_cast<uint32_t>(B.Slot), /*Check=*/true);
        if (!Br.Annul)
          Fall = Taken; // slot also runs on the fall-through path
      }
    }

    bool HasFall = Br.Op == TOp::CmpBranch || Br.Op == TOp::BranchCC ||
                   Br.Op == TOp::FBranchCC || Br.Op == TOp::BranchDec;
    checkSpExit(Taken, static_cast<uint32_t>(B.Branch), "branch taken");
    checkHeldExit(Taken, static_cast<uint32_t>(B.Branch), "branch taken");
    if (HasFall) {
      checkSpExit(Fall, static_cast<uint32_t>(B.Branch),
                  "branch fall-through");
      checkHeldExit(Fall, static_cast<uint32_t>(B.Branch),
                    "branch fall-through");
    }
  }

  TargetKind Kind;
  const target::TargetInfo &TI;
  const target::TargetCode &Code;
  const translate::SegmentLayout &Seg;
  CheckOptions Opts;
  uint32_t N;
  bool EnforceSfi = false;
  int SpReg = -1;

  std::vector<bool> Leader;
  std::vector<Block> Blocks;
  bool Invariant[NumRegs] = {};
  uint32_t InvariantVal[NumRegs] = {};
  bool Held[NumRegs] = {};
  /// Delay slot of the block being checked (-1 none): checkBranch may
  /// credit a sandbox the slot establishes, since the slot executes
  /// before an indirect transfer completes.
  int32_t CurSlot = -1;

  CheckResult Res;
};

} // namespace

CheckResult omni::sficheck::checkTranslation(TargetKind Kind,
                                             const target::TargetCode &Code,
                                             const translate::SegmentLayout &Seg,
                                             const CheckOptions &Opts) {
  Checker C(Kind, Code, Seg, Opts);
  return C.run();
}
