//===- sficheck/SfiChecker.h - SFI proof checker ----------------*- C++ -*-===//
///
/// \file
/// A standalone static checker for translated images: proves, without
/// trusting the translator, that every store and every indirect/computed
/// jump in a TargetCode is either sandboxed to the module's segment or
/// statically in-bounds. The translator is the single most complex trusted
/// component of the hosting pipeline; this checker shrinks the trusted
/// computing base to itself (a few hundred lines of abstract
/// interpretation) plus the simulator's last-line bounds checks.
///
/// The proof works on recovered basic blocks. Block leaders are the
/// prologue entry, every native index reachable by a VM-level indirect
/// jump (every VmToNative entry — the simulator maps any live VM index
/// through that table), and every direct branch target. Because any block
/// start may be reached through an indirect jump, every block is analyzed
/// from a conservative entry state; the dataflow therefore converges in a
/// single pass per block and no cross-block fixpoint iteration is needed.
///
/// Per-register abstract values (the mask lattice):
///   Unknown < {Const(c), Masked(from), InSeg(from)}
///   Masked  — value is in [0, Size):   produced by `and r, mask`
///   InSeg   — value is in [Base, Base+Size): `or masked, base`
/// Masked/InSeg carry provenance: which register they sandbox and that
/// register's def-generation, so a mask of the wrong register or a
/// clobbered mask can never discharge a jump obligation.
///
/// The segment's invariant registers (mask, base, global pointer) are not
/// hard-coded: a register qualifies as invariant only if the entry block
/// computes a constant into it, no other instruction in the image defines
/// it, and it is not addressable by the module through the VM register
/// map. A bit-flipped prologue constant therefore fails obligations
/// naturally instead of being "trusted back in".
///
/// Verdicts: Proved (statically safe — including accesses that ride the
/// guard zone above an in-segment base, a proof grounded in
/// vm::GuardZoneSize), Assumed (safe by a documented runtime mechanism:
/// x86 hardware segmentation, SFI disabled by configuration), Failed (an
/// enforced obligation could not be discharged). A check succeeds iff
/// nothing Failed.
///
/// Two inductive facts extend the per-block analysis across indirect
/// control flow: the sp discipline (sp enters every block in-segment;
/// every block exit re-proves it) and, symmetrically, "held" registers —
/// prologue-initialized, non-VM-mapped registers the SFI optimizer's
/// hoisted preheaders re-sandbox (ObKind::HoldExit is the induction
/// step's obligation).
///
//===----------------------------------------------------------------------===//
#ifndef OMNI_SFICHECK_SFICHECKER_H
#define OMNI_SFICHECK_SFICHECKER_H

#include "target/TargetInfo.h"
#include "translate/Translator.h"

#include <cstdint>
#include <string>
#include <vector>

namespace omni {
namespace sficheck {

/// What a single proof obligation is about.
enum class ObKind : uint8_t {
  Store,        ///< a store's effective address is confined to the segment
  Load,         ///< a load's effective address (enforced when SfiReads)
  JumpIndirect, ///< an indirect/computed jump went through the sandbox
  BranchDirect, ///< a direct branch target is statically in-bounds
  SpExit,       ///< stack pointer leaves a block inside the segment
  HoldExit,     ///< a held (hoisted-base) register leaves a block in-segment
  Layout,       ///< the image/segment shape itself is unusable
};

const char *getObKindName(ObKind K);

/// Outcome of one obligation.
enum class Verdict : uint8_t {
  Proved,  ///< statically discharged by the dataflow
  Assumed, ///< safe by a documented runtime mechanism, not by this proof
  Failed,  ///< enforced and not dischargeable
};

const char *getVerdictName(Verdict V);

/// One obligation with its verdict, for per-obligation reporting.
struct Obligation {
  ObKind Kind = ObKind::Store;
  Verdict V = Verdict::Proved;
  uint32_t NativeIndex = 0; ///< instruction index in TargetCode::Code
  int32_t VmIndex = -1;     ///< OmniVM instruction it expands (-1 prologue)
  std::string Detail;       ///< human-readable justification
};

/// Checker configuration. Sfi/SfiReads mirror the TranslateOptions the
/// image was produced with: they select which obligations are *enforced*
/// (must be Proved or guard-zone Assumed) versus merely reported.
struct CheckOptions {
  bool Sfi = true;       ///< stores and indirect jumps are enforced
  bool SfiReads = false; ///< loads are enforced too
  /// Keep a record for every obligation (the CLI's verbose mode). Failed
  /// obligations are always recorded.
  bool RecordObligations = false;
};

/// Result of checking one translated image.
struct CheckResult {
  bool Ok = true; ///< no enforced obligation failed
  uint64_t Proved = 0;
  uint64_t Assumed = 0;
  uint64_t Failed = 0;
  /// Failed obligations; every obligation when RecordObligations.
  std::vector<Obligation> Obligations;
  /// First failure, pre-formatted for a LoadError message.
  std::string FirstFailure;
};

/// Checks translated image \p Code (produced for \p Kind against segment
/// \p Seg) against the SFI safety policy. Never trusts the image: any
/// malformed shape (bad layout, out-of-range entry) fails obligations
/// instead of crashing.
CheckResult checkTranslation(target::TargetKind Kind,
                             const target::TargetCode &Code,
                             const translate::SegmentLayout &Seg,
                             const CheckOptions &Opts = CheckOptions());

} // namespace sficheck
} // namespace omni

#endif // OMNI_SFICHECK_SFICHECKER_H
