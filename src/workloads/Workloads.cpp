//===- workloads/Workloads.cpp ---------------------------------------------===//

#include "workloads/Workloads.h"

#include <cstring>

using namespace omni;
using namespace omni::workloads;

namespace {

//===----------------------------------------------------------------------===//
// li: lisp interpreter miniature
//===----------------------------------------------------------------------===//

const char *LiSource = R"MC(
/* li: a miniature xlisp. Expressions are cons trees in an arena; eval
   walks them with an environment list. Exercises pointer chasing,
   recursion, and tag dispatch like the SPEC92 original. */
void print_int(int);
void print_char(int);

enum { T_NUM, T_VAR, T_ADD, T_SUB, T_MUL, T_LT, T_IF, T_CALL };

struct cell {
  int tag;
  int a;            /* number value / variable index / function index */
  struct cell *x;   /* operands */
  struct cell *y;
  struct cell *z;
};

struct cell heap[4096];
int heap_top;
int cells_made;

struct cell *node(int tag, int a, struct cell *x, struct cell *y,
                  struct cell *z) {
  struct cell *c = &heap[heap_top++];
  c->tag = tag; c->a = a; c->x = x; c->y = y; c->z = z;
  cells_made++;
  return c;
}
struct cell *num(int v) { return node(T_NUM, v, 0, 0, 0); }
struct cell *var(int i) { return node(T_VAR, i, 0, 0, 0); }
struct cell *bin(int tag, struct cell *l, struct cell *r) {
  return node(tag, 0, l, r, 0);
}
struct cell *ifx(struct cell *c, struct cell *t, struct cell *e) {
  return node(T_IF, 0, c, t, e);
}
struct cell *call1(int fn, struct cell *a0) {
  return node(T_CALL, fn, a0, 0, 0);
}
struct cell *call3(int fn, struct cell *a0, struct cell *a1,
                   struct cell *a2) {
  return node(T_CALL, fn, a0, a1, a2);
}

/* function table: body + arity */
struct cell *fn_body[8];
int fn_arity[8];

int evals;

int eval(struct cell *e, int *env) {
  evals++;
  switch (e->tag) {
  case T_NUM: return e->a;
  case T_VAR: return env[e->a];
  case T_ADD: return eval(e->x, env) + eval(e->y, env);
  case T_SUB: return eval(e->x, env) - eval(e->y, env);
  case T_MUL: return eval(e->x, env) * eval(e->y, env);
  case T_LT:  return eval(e->x, env) < eval(e->y, env);
  case T_IF:  return eval(e->x, env) ? eval(e->y, env) : eval(e->z, env);
  default: {
    /* T_CALL: evaluate arguments, bind a fresh frame */
    int frame[3];
    int n = fn_arity[e->a];
    if (n > 0) frame[0] = eval(e->x, env);
    if (n > 1) frame[1] = eval(e->y, env);
    if (n > 2) frame[2] = eval(e->z, env);
    return eval(fn_body[e->a], frame);
  }
  }
}

int main() {
  /* (defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) */
  fn_arity[0] = 1;
  fn_body[0] = ifx(bin(T_LT, var(0), num(2)),
                   var(0),
                   bin(T_ADD,
                       call1(0, bin(T_SUB, var(0), num(1))),
                       call1(0, bin(T_SUB, var(0), num(2)))));
  /* (defun tak (x y z) (if (< y x)
        (tak (tak (1- x) y z) (tak (1- y) z x) (tak (1- z) x y)) z)) */
  fn_arity[1] = 3;
  fn_body[1] = ifx(bin(T_LT, var(1), var(0)),
                   call3(1,
                         call3(1, bin(T_SUB, var(0), num(1)), var(1),
                               var(2)),
                         call3(1, bin(T_SUB, var(1), num(1)), var(2),
                               var(0)),
                         call3(1, bin(T_SUB, var(2), num(1)), var(0),
                               var(1))),
                   var(2));

  int env[1];
  env[0] = 0;
  int r1 = eval(call1(0, num(16)), env);        /* fib 16 = 987 */
  int r2 = eval(call3(1, num(12), num(8), num(4)), env); /* tak = 5 */
  print_int(r1); print_char(' ');
  print_int(r2); print_char(' ');
  print_int(evals); print_char(' ');
  print_int(cells_made); print_char('\n');
  return 0;
}
)MC";

//===----------------------------------------------------------------------===//
// compress: LZW miniature
//===----------------------------------------------------------------------===//

const char *CompressSource = R"MC(
/* compress: LZW with 12-bit codes over synthetic English-ish text.
   Open-addressed hash table of (prefix, char) -> code, as in the SPEC92
   original's hot loop. */
void print_int(int);
void print_char(int);

enum { INSIZE = 24000, HASHSIZE = 8192, MAXCODE = 4096 };

char input[INSIZE];
int hash_prefix[HASHSIZE];
int hash_ch[HASHSIZE];
int hash_code[HASHSIZE];

unsigned seed = 99991;
int nextrand(int mod) {
  seed = seed * 1103515245 + 12345;
  return (int)((seed >> 16) % (unsigned)mod);
}

void make_input() {
  /* word soup with zipf-ish repetition so compression finds structure */
  char words[16][8];
  int wlen[16];
  int w, i, pos = 0;
  for (w = 0; w < 16; w++) {
    wlen[w] = 2 + nextrand(5);
    for (i = 0; i < wlen[w]; i++)
      words[w][i] = 'a' + nextrand(26);
  }
  while (pos < INSIZE - 9) {
    int pick = nextrand(16);
    if (pick > 7) pick = nextrand(8); /* skew toward low indices */
    for (i = 0; i < wlen[pick]; i++) input[pos++] = words[pick][i];
    input[pos++] = ' ';
  }
  while (pos < INSIZE) input[pos++] = ' ';
}

int main() {
  make_input();
  int i;
  for (i = 0; i < HASHSIZE; i++) hash_code[i] = -1;

  int next_code = 256;
  int prefix = input[0] & 0xff;
  unsigned checksum = 5381;
  int out_codes = 0;
  int probes = 0;

  for (i = 1; i < INSIZE; i++) {
    int c = input[i] & 0xff;
    /* search (prefix, c) */
    int h = ((prefix << 5) ^ c) & (HASHSIZE - 1);
    int found = -1;
    while (hash_code[h] != -1) {
      probes++;
      if (hash_prefix[h] == prefix && hash_ch[h] == c) {
        found = hash_code[h];
        break;
      }
      h = (h + 61) & (HASHSIZE - 1);
    }
    if (found != -1) {
      prefix = found;
      continue;
    }
    /* emit prefix, add (prefix,c) to the table */
    checksum = checksum * 33 + (unsigned)prefix;
    out_codes++;
    if (next_code < MAXCODE) {
      hash_prefix[h] = prefix;
      hash_ch[h] = c;
      hash_code[h] = next_code++;
    }
    prefix = c;
  }
  checksum = checksum * 33 + (unsigned)prefix;
  out_codes++;

  print_int((int)(checksum & 0x7fffffff)); print_char(' ');
  print_int(out_codes); print_char(' ');
  print_int(next_code); print_char(' ');
  print_int(probes); print_char('\n');
  return 0;
}
)MC";

//===----------------------------------------------------------------------===//
// alvinn: neural net miniature
//===----------------------------------------------------------------------===//

const char *AlvinnSource = R"MC(
/* alvinn: two-layer perceptron trained by backprop on synthetic road
   images; double-precision inner products dominate, like the SPEC92
   original. Sigmoid is rational (no libm in the sandbox). */
void print_int(int);
void print_char(int);

enum { IN = 48, HID = 12, OUT = 4, PATTERNS = 8, EPOCHS = 12 };

double w1[HID][IN];
double w2[OUT][HID];
double pat_in[PATTERNS][IN];
double pat_out[PATTERNS][OUT];
double hid_act[HID];
double hid_raw[HID];
double out_act[OUT];
double out_raw[OUT];
double out_delta[OUT];
double hid_delta[HID];

unsigned seed = 424243;
double frand() {
  seed = seed * 1103515245 + 12345;
  return (double)(int)((seed >> 16) & 0x7fff) / 32768.0 - 0.5;
}

double sigmoid(double x) {
  double ax = x < 0.0 ? -x : x;
  return 0.5 + 0.5 * (x / (1.0 + ax));
}
double dsigmoid(double x) {
  double ax = x < 0.0 ? -x : x;
  double d = 1.0 + ax;
  return 0.5 / (d * d);
}

int main() {
  int i, j, p, e;
  for (j = 0; j < HID; j++)
    for (i = 0; i < IN; i++) w1[j][i] = frand();
  for (j = 0; j < OUT; j++)
    for (i = 0; i < HID; i++) w2[j][i] = frand();
  for (p = 0; p < PATTERNS; p++) {
    /* a "road" centered at column c: bright band across the inputs */
    int c = (p * IN) / PATTERNS;
    for (i = 0; i < IN; i++) {
      int d = i - c;
      if (d < 0) d = -d;
      pat_in[p][i] = d < 4 ? 1.0 : 0.1;
    }
    for (j = 0; j < OUT; j++)
      pat_out[p][j] = (p % OUT) == j ? 0.9 : 0.1;
  }

  double lr = 0.3;
  double total_err = 0.0;
  for (e = 0; e < EPOCHS; e++) {
    total_err = 0.0;
    for (p = 0; p < PATTERNS; p++) {
      /* forward */
      for (j = 0; j < HID; j++) {
        double s = 0.0;
        for (i = 0; i < IN; i++) s += w1[j][i] * pat_in[p][i];
        hid_raw[j] = s;
        hid_act[j] = sigmoid(s);
      }
      for (j = 0; j < OUT; j++) {
        double s = 0.0;
        for (i = 0; i < HID; i++) s += w2[j][i] * hid_act[i];
        out_raw[j] = s;
        out_act[j] = sigmoid(s);
      }
      /* backward */
      for (j = 0; j < OUT; j++) {
        double err = pat_out[p][j] - out_act[j];
        total_err += err * err;
        out_delta[j] = err * dsigmoid(out_raw[j]);
      }
      for (j = 0; j < HID; j++) {
        double s = 0.0;
        for (i = 0; i < OUT; i++) s += out_delta[i] * w2[i][j];
        hid_delta[j] = s * dsigmoid(hid_raw[j]);
      }
      for (j = 0; j < OUT; j++)
        for (i = 0; i < HID; i++)
          w2[j][i] += lr * out_delta[j] * hid_act[i];
      for (j = 0; j < HID; j++)
        for (i = 0; i < IN; i++)
          w1[j][i] += lr * hid_delta[j] * pat_in[p][i];
    }
  }

  /* weight checksum + final error, scaled to integers */
  double wsum = 0.0;
  for (j = 0; j < HID; j++)
    for (i = 0; i < IN; i++) wsum += w1[j][i];
  for (j = 0; j < OUT; j++)
    for (i = 0; i < HID; i++) wsum += w2[j][i];
  print_int((int)(total_err * 1000000.0)); print_char(' ');
  print_int((int)(wsum * 1000.0)); print_char('\n');
  return 0;
}
)MC";

//===----------------------------------------------------------------------===//
// eqntott: truth-table sort miniature
//===----------------------------------------------------------------------===//

const char *EqntottSource = R"MC(
/* eqntott: sorting product terms of a truth table. The hot spot is
   cmppt, a lexicographic comparator over vectors of {0,1,2} values,
   driving quicksort — exactly the SPEC92 profile. */
void print_int(int);
void print_char(int);

enum { NTERMS = 160, NVARS = 40 };

char pt[NTERMS][NVARS];
int order[NTERMS];
int cmps;

unsigned seed = 777;
int nextrand(int mod) {
  seed = seed * 1103515245 + 12345;
  return (int)((seed >> 16) % (unsigned)mod);
}

int cmppt(int a, int b) {
  char *pa = pt[a];
  char *pb = pt[b];
  int i;
  cmps++;
  for (i = 0; i < NVARS; i++) {
    if (pa[i] < pb[i]) return -1;
    if (pa[i] > pb[i]) return 1;
  }
  return 0;
}

void sortpt(int lo, int hi) {
  if (lo >= hi) return;
  int pivot = order[(lo + hi) / 2];
  int i = lo, j = hi;
  while (i <= j) {
    while (cmppt(order[i], pivot) < 0) i++;
    while (cmppt(order[j], pivot) > 0) j--;
    if (i <= j) {
      int t = order[i]; order[i] = order[j]; order[j] = t;
      i++; j--;
    }
  }
  sortpt(lo, j);
  sortpt(i, hi);
}

int main() {
  int t, v;
  for (t = 0; t < NTERMS; t++) {
    order[t] = t;
    for (v = 0; v < NVARS; v++) {
      int r = nextrand(10);
      /* mostly don't-cares with sparse 0/1, like real PLA terms */
      pt[t][v] = r < 6 ? 2 : (r & 1);
    }
  }
  /* duplicate a block of terms so the sort sees equal keys */
  for (t = 0; t < 24; t++)
    for (v = 0; v < NVARS; v++)
      pt[NTERMS - 1 - t][v] = pt[t][v];

  sortpt(0, NTERMS - 1);

  int sorted = 1, distinct = 1;
  for (t = 1; t < NTERMS; t++) {
    int c = cmppt(order[t - 1], order[t]);
    if (c > 0) sorted = 0;
    if (c != 0) distinct++;
  }
  unsigned h = 5381;
  for (t = 0; t < NTERMS; t++)
    for (v = 0; v < NVARS; v++)
      h = h * 31 + (unsigned)pt[order[t]][v];

  print_int(sorted); print_char(' ');
  print_int(distinct); print_char(' ');
  print_int(cmps); print_char(' ');
  print_int((int)(h & 0x7fffffff)); print_char('\n');
  return 0;
}
)MC";

//===----------------------------------------------------------------------===//
// Pascal ports
//===----------------------------------------------------------------------===//
//
// Line-for-line ports of three workloads (li needs records and pointers,
// outside the Pascal subset). Semantic notes that keep them bit-equal to
// the MiniC sources:
//  * `shr` is a logical shift (C's unsigned >>); every shifted value here
//    is a seed whose low 16 bits are discarded, exactly as in C
//  * `div`/`mod` are the signed forms; all operands are non-negative at
//    those sites, so they agree with C's / and %
//  * integer arithmetic wraps mod 2^32 in both languages, so the
//    `checksum * 33 + x` style hashes agree bit-for-bit
//  * FP expression trees are kept in the same shape and order, so IEEE
//    results (and the truncated checksums) are identical
//  * C's early-exit loops (break/continue/return) are rewritten as
//    nested ifs with explicit scan flags / bound-forcing assignments that
//    preserve probe/comparison counts
//  * each C main's locals become locals of a `run` procedure (the classic
//    Pascal idiom): program-level variables live in memory, and keeping
//    hot counters there instead of registers would bill Pascal for a
//    declaration-site accident rather than the algorithm

const char *CompressPascal = R"PAS(
program compress;
{ LZW miniature, ported statement-for-statement from the MiniC workload:
  same hash probe sequence, same checksum. }
const
  INSIZE = 24000;
  HASHSIZE = 8192;
  MAXCODE = 4096;
var
  input: array[0..INSIZE-1] of char;
  hash_prefix: array[0..HASHSIZE-1] of integer;
  hash_ch: array[0..HASHSIZE-1] of integer;
  hash_code: array[0..HASHSIZE-1] of integer;
  seed: integer;

function nextrand(m: integer): integer;
begin
  seed := seed * 1103515245 + 12345;
  nextrand := (seed shr 16) mod m
end;

procedure make_input;
var
  words: array[0..15, 0..7] of char;
  wlen: array[0..15] of integer;
  w, i, pos, pick: integer;
begin
  { word soup with zipf-ish repetition so compression finds structure }
  pos := 0;
  for w := 0 to 15 do begin
    wlen[w] := 2 + nextrand(5);
    for i := 0 to wlen[w] - 1 do
      words[w, i] := chr(ord('a') + nextrand(26))
  end;
  while pos < INSIZE - 9 do begin
    pick := nextrand(16);
    if pick > 7 then pick := nextrand(8); { skew toward low indices }
    for i := 0 to wlen[pick] - 1 do begin
      input[pos] := words[pick, i];
      pos := pos + 1
    end;
    input[pos] := ' ';
    pos := pos + 1
  end;
  while pos < INSIZE do begin
    input[pos] := ' ';
    pos := pos + 1
  end
end;

procedure run;
var
  { the MiniC main's locals stay locals: registers, not globals }
  i, c, h, found, scan, next_code, prefix: integer;
  checksum, out_codes, probes: integer;
begin
  seed := 99991;
  make_input;
  for i := 0 to HASHSIZE - 1 do hash_code[i] := -1;

  next_code := 256;
  prefix := ord(input[0]);
  checksum := 5381;
  out_codes := 0;
  probes := 0;

  for i := 1 to INSIZE - 1 do begin
    c := ord(input[i]);
    { search (prefix, c); the scan flag mirrors C's break so the
      per-iteration work — one probe count, one or two field compares,
      one step of the probe sequence — is identical }
    h := ((prefix shl 5) xor c) and (HASHSIZE - 1);
    found := -1;
    scan := 1;
    while scan = 1 do begin
      if hash_code[h] = -1 then
        scan := 0
      else begin
        probes := probes + 1;
        if hash_prefix[h] = prefix then begin
          if hash_ch[h] = c then begin
            found := hash_code[h];
            scan := 0
          end else
            h := (h + 61) and (HASHSIZE - 1)
        end else
          h := (h + 61) and (HASHSIZE - 1)
      end
    end;
    if found <> -1 then
      prefix := found
    else begin
      { emit prefix, add (prefix,c) to the table }
      checksum := checksum * 33 + prefix;
      out_codes := out_codes + 1;
      if next_code < MAXCODE then begin
        hash_prefix[h] := prefix;
        hash_ch[h] := c;
        hash_code[h] := next_code;
        next_code := next_code + 1
      end;
      prefix := c
    end
  end;
  checksum := checksum * 33 + prefix;
  out_codes := out_codes + 1;

  writeln(checksum and $7fffffff, ' ', out_codes, ' ', next_code, ' ',
          probes)
end;

begin
  run
end.
)PAS";

const char *AlvinnPascal = R"PAS(
program alvinn;
{ Two-layer perceptron with backprop; the FP expression trees mirror the
  MiniC source exactly, so the truncated checksums agree bit-for-bit. }
const
  IN_N = 48;
  HID = 12;
  OUT_N = 4;
  PATTERNS = 8;
  EPOCHS = 12;
var
  w1: array[0..HID-1, 0..IN_N-1] of real;
  w2: array[0..OUT_N-1, 0..HID-1] of real;
  pat_in: array[0..PATTERNS-1, 0..IN_N-1] of real;
  pat_out: array[0..PATTERNS-1, 0..OUT_N-1] of real;
  hid_act, hid_raw, hid_delta: array[0..HID-1] of real;
  out_act, out_raw, out_delta: array[0..OUT_N-1] of real;
  seed: integer;

function frand: real;
begin
  seed := seed * 1103515245 + 12345;
  frand := ((seed shr 16) and $7fff) / 32768.0 - 0.5
end;

function sigmoid(x: real): real;
var ax: real;
begin
  if x < 0.0 then ax := -x else ax := x;
  sigmoid := 0.5 + 0.5 * (x / (1.0 + ax))
end;

function dsigmoid(x: real): real;
var ax, d: real;
begin
  if x < 0.0 then ax := -x else ax := x;
  d := 1.0 + ax;
  dsigmoid := 0.5 / (d * d)
end;

procedure run;
var
  { the MiniC main's locals stay locals: registers, not globals }
  i, j, p, e, c, d: integer;
  lr, total_err, s, err, wsum: real;
begin
  seed := 424243;
  for j := 0 to HID - 1 do
    for i := 0 to IN_N - 1 do w1[j, i] := frand;
  for j := 0 to OUT_N - 1 do
    for i := 0 to HID - 1 do w2[j, i] := frand;
  for p := 0 to PATTERNS - 1 do begin
    { a "road" centered at column c: bright band across the inputs }
    c := (p * IN_N) div PATTERNS;
    for i := 0 to IN_N - 1 do begin
      d := i - c;
      if d < 0 then d := -d;
      if d < 4 then pat_in[p, i] := 1.0 else pat_in[p, i] := 0.1
    end;
    for j := 0 to OUT_N - 1 do
      if (p mod OUT_N) = j then pat_out[p, j] := 0.9
      else pat_out[p, j] := 0.1
  end;

  lr := 0.3;
  total_err := 0.0;
  for e := 0 to EPOCHS - 1 do begin
    total_err := 0.0;
    for p := 0 to PATTERNS - 1 do begin
      { forward }
      for j := 0 to HID - 1 do begin
        s := 0.0;
        for i := 0 to IN_N - 1 do s := s + w1[j, i] * pat_in[p, i];
        hid_raw[j] := s;
        hid_act[j] := sigmoid(s)
      end;
      for j := 0 to OUT_N - 1 do begin
        s := 0.0;
        for i := 0 to HID - 1 do s := s + w2[j, i] * hid_act[i];
        out_raw[j] := s;
        out_act[j] := sigmoid(s)
      end;
      { backward }
      for j := 0 to OUT_N - 1 do begin
        err := pat_out[p, j] - out_act[j];
        total_err := total_err + err * err;
        out_delta[j] := err * dsigmoid(out_raw[j])
      end;
      for j := 0 to HID - 1 do begin
        s := 0.0;
        for i := 0 to OUT_N - 1 do s := s + out_delta[i] * w2[i, j];
        hid_delta[j] := s * dsigmoid(hid_raw[j])
      end;
      for j := 0 to OUT_N - 1 do
        for i := 0 to HID - 1 do
          w2[j, i] := w2[j, i] + lr * out_delta[j] * hid_act[i];
      for j := 0 to HID - 1 do
        for i := 0 to IN_N - 1 do
          w1[j, i] := w1[j, i] + lr * hid_delta[j] * pat_in[p, i]
    end
  end;

  { weight checksum + final error, scaled to integers }
  wsum := 0.0;
  for j := 0 to HID - 1 do
    for i := 0 to IN_N - 1 do wsum := wsum + w1[j, i];
  for j := 0 to OUT_N - 1 do
    for i := 0 to HID - 1 do wsum := wsum + w2[j, i];
  writeln(trunc(total_err * 1000000.0), ' ', trunc(wsum * 1000.0))
end;

begin
  run
end.
)PAS";

const char *EqntottPascal = R"PAS(
program eqntott;
{ Truth-table sort; cmppt's early-return scan becomes a bound-forcing
  while that performs the same element comparisons. }
const
  NTERMS = 160;
  NVARS = 40;
var
  pt: array[0..NTERMS-1, 0..NVARS-1] of char;
  order: array[0..NTERMS-1] of integer;
  cmps, seed: integer;

function nextrand(m: integer): integer;
begin
  seed := seed * 1103515245 + 12345;
  nextrand := (seed shr 16) mod m
end;

function cmppt(a, b: integer): integer;
var i, r: integer;
begin
  cmps := cmps + 1;
  { C returns from inside the loop; forcing i to the bound is the same
    exit without materializing a boolean each iteration }
  r := 0;
  i := 0;
  while i < NVARS do begin
    if pt[a, i] < pt[b, i] then begin r := -1; i := NVARS end
    else if pt[a, i] > pt[b, i] then begin r := 1; i := NVARS end
    else i := i + 1
  end;
  cmppt := r
end;

procedure sortpt(lo, hi: integer);
var pivot, i, j, t: integer;
begin
  if lo < hi then begin
    pivot := order[(lo + hi) div 2];
    i := lo;
    j := hi;
    while i <= j do begin
      while cmppt(order[i], pivot) < 0 do i := i + 1;
      while cmppt(order[j], pivot) > 0 do j := j - 1;
      if i <= j then begin
        t := order[i]; order[i] := order[j]; order[j] := t;
        i := i + 1; j := j - 1
      end
    end;
    sortpt(lo, j);
    sortpt(i, hi)
  end
end;

procedure run;
var
  { the MiniC main's locals stay locals: registers, not globals }
  t, v, r, c, sorted, distinct, h: integer;
begin
  seed := 777;
  for t := 0 to NTERMS - 1 do begin
    order[t] := t;
    for v := 0 to NVARS - 1 do begin
      r := nextrand(10);
      { mostly don't-cares with sparse 0/1, like real PLA terms }
      if r < 6 then pt[t, v] := chr(2) else pt[t, v] := chr(r and 1)
    end
  end;
  { duplicate a block of terms so the sort sees equal keys }
  for t := 0 to 23 do
    for v := 0 to NVARS - 1 do
      pt[NTERMS - 1 - t, v] := pt[t, v];

  sortpt(0, NTERMS - 1);

  sorted := 1;
  distinct := 1;
  for t := 1 to NTERMS - 1 do begin
    c := cmppt(order[t - 1], order[t]);
    if c > 0 then sorted := 0;
    if c <> 0 then distinct := distinct + 1
  end;
  h := 5381;
  for t := 0 to NTERMS - 1 do
    for v := 0 to NVARS - 1 do
      h := h * 31 + ord(pt[order[t], v]);

  writeln(sorted, ' ', distinct, ' ', cmps, ' ', h and $7fffffff)
end;

begin
  run
end.
)PAS";

Workload Table[NumWorkloads] = {
    {"li", LiSource, "987 5 45198 44\n", false, nullptr},
    {"compress", CompressSource, "1450125514 3115 3370 26351\n", false,
     CompressPascal},
    {"alvinn", AlvinnSource, "3183146 1256\n", true, AlvinnPascal},
    {"eqntott", EqntottSource, "1 136 1742 644029541\n", false,
     EqntottPascal},
};

} // namespace

const Workload &omni::workloads::getWorkload(unsigned I) {
  return Table[I % NumWorkloads];
}

const Workload *omni::workloads::findWorkload(const char *Name) {
  for (Workload &W : Table)
    if (std::strcmp(W.Name, Name) == 0)
      return &W;
  return nullptr;
}
