//===- workloads/Workloads.cpp ---------------------------------------------===//

#include "workloads/Workloads.h"

#include <cstring>

using namespace omni;
using namespace omni::workloads;

namespace {

//===----------------------------------------------------------------------===//
// li: lisp interpreter miniature
//===----------------------------------------------------------------------===//

const char *LiSource = R"MC(
/* li: a miniature xlisp. Expressions are cons trees in an arena; eval
   walks them with an environment list. Exercises pointer chasing,
   recursion, and tag dispatch like the SPEC92 original. */
void print_int(int);
void print_char(int);

enum { T_NUM, T_VAR, T_ADD, T_SUB, T_MUL, T_LT, T_IF, T_CALL };

struct cell {
  int tag;
  int a;            /* number value / variable index / function index */
  struct cell *x;   /* operands */
  struct cell *y;
  struct cell *z;
};

struct cell heap[4096];
int heap_top;
int cells_made;

struct cell *node(int tag, int a, struct cell *x, struct cell *y,
                  struct cell *z) {
  struct cell *c = &heap[heap_top++];
  c->tag = tag; c->a = a; c->x = x; c->y = y; c->z = z;
  cells_made++;
  return c;
}
struct cell *num(int v) { return node(T_NUM, v, 0, 0, 0); }
struct cell *var(int i) { return node(T_VAR, i, 0, 0, 0); }
struct cell *bin(int tag, struct cell *l, struct cell *r) {
  return node(tag, 0, l, r, 0);
}
struct cell *ifx(struct cell *c, struct cell *t, struct cell *e) {
  return node(T_IF, 0, c, t, e);
}
struct cell *call1(int fn, struct cell *a0) {
  return node(T_CALL, fn, a0, 0, 0);
}
struct cell *call3(int fn, struct cell *a0, struct cell *a1,
                   struct cell *a2) {
  return node(T_CALL, fn, a0, a1, a2);
}

/* function table: body + arity */
struct cell *fn_body[8];
int fn_arity[8];

int evals;

int eval(struct cell *e, int *env) {
  evals++;
  switch (e->tag) {
  case T_NUM: return e->a;
  case T_VAR: return env[e->a];
  case T_ADD: return eval(e->x, env) + eval(e->y, env);
  case T_SUB: return eval(e->x, env) - eval(e->y, env);
  case T_MUL: return eval(e->x, env) * eval(e->y, env);
  case T_LT:  return eval(e->x, env) < eval(e->y, env);
  case T_IF:  return eval(e->x, env) ? eval(e->y, env) : eval(e->z, env);
  default: {
    /* T_CALL: evaluate arguments, bind a fresh frame */
    int frame[3];
    int n = fn_arity[e->a];
    if (n > 0) frame[0] = eval(e->x, env);
    if (n > 1) frame[1] = eval(e->y, env);
    if (n > 2) frame[2] = eval(e->z, env);
    return eval(fn_body[e->a], frame);
  }
  }
}

int main() {
  /* (defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) */
  fn_arity[0] = 1;
  fn_body[0] = ifx(bin(T_LT, var(0), num(2)),
                   var(0),
                   bin(T_ADD,
                       call1(0, bin(T_SUB, var(0), num(1))),
                       call1(0, bin(T_SUB, var(0), num(2)))));
  /* (defun tak (x y z) (if (< y x)
        (tak (tak (1- x) y z) (tak (1- y) z x) (tak (1- z) x y)) z)) */
  fn_arity[1] = 3;
  fn_body[1] = ifx(bin(T_LT, var(1), var(0)),
                   call3(1,
                         call3(1, bin(T_SUB, var(0), num(1)), var(1),
                               var(2)),
                         call3(1, bin(T_SUB, var(1), num(1)), var(2),
                               var(0)),
                         call3(1, bin(T_SUB, var(2), num(1)), var(0),
                               var(1))),
                   var(2));

  int env[1];
  env[0] = 0;
  int r1 = eval(call1(0, num(16)), env);        /* fib 16 = 987 */
  int r2 = eval(call3(1, num(12), num(8), num(4)), env); /* tak = 5 */
  print_int(r1); print_char(' ');
  print_int(r2); print_char(' ');
  print_int(evals); print_char(' ');
  print_int(cells_made); print_char('\n');
  return 0;
}
)MC";

//===----------------------------------------------------------------------===//
// compress: LZW miniature
//===----------------------------------------------------------------------===//

const char *CompressSource = R"MC(
/* compress: LZW with 12-bit codes over synthetic English-ish text.
   Open-addressed hash table of (prefix, char) -> code, as in the SPEC92
   original's hot loop. */
void print_int(int);
void print_char(int);

enum { INSIZE = 24000, HASHSIZE = 8192, MAXCODE = 4096 };

char input[INSIZE];
int hash_prefix[HASHSIZE];
int hash_ch[HASHSIZE];
int hash_code[HASHSIZE];

unsigned seed = 99991;
int nextrand(int mod) {
  seed = seed * 1103515245 + 12345;
  return (int)((seed >> 16) % (unsigned)mod);
}

void make_input() {
  /* word soup with zipf-ish repetition so compression finds structure */
  char words[16][8];
  int wlen[16];
  int w, i, pos = 0;
  for (w = 0; w < 16; w++) {
    wlen[w] = 2 + nextrand(5);
    for (i = 0; i < wlen[w]; i++)
      words[w][i] = 'a' + nextrand(26);
  }
  while (pos < INSIZE - 9) {
    int pick = nextrand(16);
    if (pick > 7) pick = nextrand(8); /* skew toward low indices */
    for (i = 0; i < wlen[pick]; i++) input[pos++] = words[pick][i];
    input[pos++] = ' ';
  }
  while (pos < INSIZE) input[pos++] = ' ';
}

int main() {
  make_input();
  int i;
  for (i = 0; i < HASHSIZE; i++) hash_code[i] = -1;

  int next_code = 256;
  int prefix = input[0] & 0xff;
  unsigned checksum = 5381;
  int out_codes = 0;
  int probes = 0;

  for (i = 1; i < INSIZE; i++) {
    int c = input[i] & 0xff;
    /* search (prefix, c) */
    int h = ((prefix << 5) ^ c) & (HASHSIZE - 1);
    int found = -1;
    while (hash_code[h] != -1) {
      probes++;
      if (hash_prefix[h] == prefix && hash_ch[h] == c) {
        found = hash_code[h];
        break;
      }
      h = (h + 61) & (HASHSIZE - 1);
    }
    if (found != -1) {
      prefix = found;
      continue;
    }
    /* emit prefix, add (prefix,c) to the table */
    checksum = checksum * 33 + (unsigned)prefix;
    out_codes++;
    if (next_code < MAXCODE) {
      hash_prefix[h] = prefix;
      hash_ch[h] = c;
      hash_code[h] = next_code++;
    }
    prefix = c;
  }
  checksum = checksum * 33 + (unsigned)prefix;
  out_codes++;

  print_int((int)(checksum & 0x7fffffff)); print_char(' ');
  print_int(out_codes); print_char(' ');
  print_int(next_code); print_char(' ');
  print_int(probes); print_char('\n');
  return 0;
}
)MC";

//===----------------------------------------------------------------------===//
// alvinn: neural net miniature
//===----------------------------------------------------------------------===//

const char *AlvinnSource = R"MC(
/* alvinn: two-layer perceptron trained by backprop on synthetic road
   images; double-precision inner products dominate, like the SPEC92
   original. Sigmoid is rational (no libm in the sandbox). */
void print_int(int);
void print_char(int);

enum { IN = 48, HID = 12, OUT = 4, PATTERNS = 8, EPOCHS = 12 };

double w1[HID][IN];
double w2[OUT][HID];
double pat_in[PATTERNS][IN];
double pat_out[PATTERNS][OUT];
double hid_act[HID];
double hid_raw[HID];
double out_act[OUT];
double out_raw[OUT];
double out_delta[OUT];
double hid_delta[HID];

unsigned seed = 424243;
double frand() {
  seed = seed * 1103515245 + 12345;
  return (double)(int)((seed >> 16) & 0x7fff) / 32768.0 - 0.5;
}

double sigmoid(double x) {
  double ax = x < 0.0 ? -x : x;
  return 0.5 + 0.5 * (x / (1.0 + ax));
}
double dsigmoid(double x) {
  double ax = x < 0.0 ? -x : x;
  double d = 1.0 + ax;
  return 0.5 / (d * d);
}

int main() {
  int i, j, p, e;
  for (j = 0; j < HID; j++)
    for (i = 0; i < IN; i++) w1[j][i] = frand();
  for (j = 0; j < OUT; j++)
    for (i = 0; i < HID; i++) w2[j][i] = frand();
  for (p = 0; p < PATTERNS; p++) {
    /* a "road" centered at column c: bright band across the inputs */
    int c = (p * IN) / PATTERNS;
    for (i = 0; i < IN; i++) {
      int d = i - c;
      if (d < 0) d = -d;
      pat_in[p][i] = d < 4 ? 1.0 : 0.1;
    }
    for (j = 0; j < OUT; j++)
      pat_out[p][j] = (p % OUT) == j ? 0.9 : 0.1;
  }

  double lr = 0.3;
  double total_err = 0.0;
  for (e = 0; e < EPOCHS; e++) {
    total_err = 0.0;
    for (p = 0; p < PATTERNS; p++) {
      /* forward */
      for (j = 0; j < HID; j++) {
        double s = 0.0;
        for (i = 0; i < IN; i++) s += w1[j][i] * pat_in[p][i];
        hid_raw[j] = s;
        hid_act[j] = sigmoid(s);
      }
      for (j = 0; j < OUT; j++) {
        double s = 0.0;
        for (i = 0; i < HID; i++) s += w2[j][i] * hid_act[i];
        out_raw[j] = s;
        out_act[j] = sigmoid(s);
      }
      /* backward */
      for (j = 0; j < OUT; j++) {
        double err = pat_out[p][j] - out_act[j];
        total_err += err * err;
        out_delta[j] = err * dsigmoid(out_raw[j]);
      }
      for (j = 0; j < HID; j++) {
        double s = 0.0;
        for (i = 0; i < OUT; i++) s += out_delta[i] * w2[i][j];
        hid_delta[j] = s * dsigmoid(hid_raw[j]);
      }
      for (j = 0; j < OUT; j++)
        for (i = 0; i < HID; i++)
          w2[j][i] += lr * out_delta[j] * hid_act[i];
      for (j = 0; j < HID; j++)
        for (i = 0; i < IN; i++)
          w1[j][i] += lr * hid_delta[j] * pat_in[p][i];
    }
  }

  /* weight checksum + final error, scaled to integers */
  double wsum = 0.0;
  for (j = 0; j < HID; j++)
    for (i = 0; i < IN; i++) wsum += w1[j][i];
  for (j = 0; j < OUT; j++)
    for (i = 0; i < HID; i++) wsum += w2[j][i];
  print_int((int)(total_err * 1000000.0)); print_char(' ');
  print_int((int)(wsum * 1000.0)); print_char('\n');
  return 0;
}
)MC";

//===----------------------------------------------------------------------===//
// eqntott: truth-table sort miniature
//===----------------------------------------------------------------------===//

const char *EqntottSource = R"MC(
/* eqntott: sorting product terms of a truth table. The hot spot is
   cmppt, a lexicographic comparator over vectors of {0,1,2} values,
   driving quicksort — exactly the SPEC92 profile. */
void print_int(int);
void print_char(int);

enum { NTERMS = 160, NVARS = 40 };

char pt[NTERMS][NVARS];
int order[NTERMS];
int cmps;

unsigned seed = 777;
int nextrand(int mod) {
  seed = seed * 1103515245 + 12345;
  return (int)((seed >> 16) % (unsigned)mod);
}

int cmppt(int a, int b) {
  char *pa = pt[a];
  char *pb = pt[b];
  int i;
  cmps++;
  for (i = 0; i < NVARS; i++) {
    if (pa[i] < pb[i]) return -1;
    if (pa[i] > pb[i]) return 1;
  }
  return 0;
}

void sortpt(int lo, int hi) {
  if (lo >= hi) return;
  int pivot = order[(lo + hi) / 2];
  int i = lo, j = hi;
  while (i <= j) {
    while (cmppt(order[i], pivot) < 0) i++;
    while (cmppt(order[j], pivot) > 0) j--;
    if (i <= j) {
      int t = order[i]; order[i] = order[j]; order[j] = t;
      i++; j--;
    }
  }
  sortpt(lo, j);
  sortpt(i, hi);
}

int main() {
  int t, v;
  for (t = 0; t < NTERMS; t++) {
    order[t] = t;
    for (v = 0; v < NVARS; v++) {
      int r = nextrand(10);
      /* mostly don't-cares with sparse 0/1, like real PLA terms */
      pt[t][v] = r < 6 ? 2 : (r & 1);
    }
  }
  /* duplicate a block of terms so the sort sees equal keys */
  for (t = 0; t < 24; t++)
    for (v = 0; v < NVARS; v++)
      pt[NTERMS - 1 - t][v] = pt[t][v];

  sortpt(0, NTERMS - 1);

  int sorted = 1, distinct = 1;
  for (t = 1; t < NTERMS; t++) {
    int c = cmppt(order[t - 1], order[t]);
    if (c > 0) sorted = 0;
    if (c != 0) distinct++;
  }
  unsigned h = 5381;
  for (t = 0; t < NTERMS; t++)
    for (v = 0; v < NVARS; v++)
      h = h * 31 + (unsigned)pt[order[t]][v];

  print_int(sorted); print_char(' ');
  print_int(distinct); print_char(' ');
  print_int(cmps); print_char(' ');
  print_int((int)(h & 0x7fffffff)); print_char('\n');
  return 0;
}
)MC";

Workload Table[NumWorkloads] = {
    {"li", LiSource, "987 5 45198 44\n", false},
    {"compress", CompressSource, "1450125514 3115 3370 26351\n", false},
    {"alvinn", AlvinnSource, "3183146 1256\n", true},
    {"eqntott", EqntottSource, "1 136 1742 644029541\n", false},
};

} // namespace

const Workload &omni::workloads::getWorkload(unsigned I) {
  return Table[I % NumWorkloads];
}

const Workload *omni::workloads::findWorkload(const char *Name) {
  for (Workload &W : Table)
    if (std::strcmp(W.Name, Name) == 0)
      return &W;
  return nullptr;
}
