//===- workloads/Workloads.h - SPEC92-miniature benchmark programs -*-C++-*-===//
///
/// \file
/// The four benchmark programs of the paper's evaluation — li, compress,
/// alvinn, eqntott — as deterministic MiniC miniatures with the same
/// hot-loop character as the SPEC92 originals (whose reference inputs are
/// unavailable; see DESIGN.md):
///
///  * li       — a lisp interpreter evaluating recursive functions over
///               cons cells (pointer chasing, recursion, dispatch);
///  * compress — LZW compression of synthetic text (hash table probing,
///               byte loads/stores);
///  * alvinn   — two-layer neural network forward+backprop training
///               (double-precision array loops);
///  * eqntott  — bit-vector truth-table sorting dominated by a cmppt-style
///               comparator (compare-heavy quicksort).
///
/// Each program prints a checksum; ExpectedOutput pins it so that every
/// engine and configuration is verified against the same behaviour.
///
//===----------------------------------------------------------------------===//
#ifndef OMNI_WORKLOADS_WORKLOADS_H
#define OMNI_WORKLOADS_WORKLOADS_H

#include <cstddef>

namespace omni {
namespace workloads {

struct Workload {
  const char *Name;
  const char *Source;         ///< MiniC source
  const char *ExpectedOutput; ///< pinned checksum output
  bool FpHeavy;               ///< alvinn-style fp mix
  /// Pascal port of the same algorithm (nullptr when not ported). Ports
  /// are written to be bit-equal: same arithmetic, same FP operation
  /// order, same ExpectedOutput on every engine — the paper's
  /// language-independence claim made checkable.
  const char *PascalSource;
};

constexpr unsigned NumWorkloads = 4;

/// Returns workload \p I (0 = li, 1 = compress, 2 = alvinn, 3 = eqntott).
const Workload &getWorkload(unsigned I);

/// Finds a workload by name; nullptr when unknown.
const Workload *findWorkload(const char *Name);

} // namespace workloads
} // namespace omni

#endif // OMNI_WORKLOADS_WORKLOADS_H
