//===- frontend/Types.cpp -------------------------------------------------===//

#include "frontend/Types.h"

#include "support/Format.h"

#include <cassert>

using namespace omni;
using namespace omni::minic;

TypeContext::TypeContext() {
  TypeKind Kinds[9] = {TypeKind::Void,  TypeKind::Char,  TypeKind::UChar,
                       TypeKind::Short, TypeKind::UShort, TypeKind::Int,
                       TypeKind::UInt,  TypeKind::Float, TypeKind::Double};
  for (int I = 0; I < 9; ++I)
    Basic[I].K = Kinds[I];
}

CTypeRef TypeContext::getPointer(CTypeRef Pointee) {
  for (const CType &T : Derived)
    if (T.K == TypeKind::Pointer && T.Pointee == Pointee)
      return &T;
  CType T;
  T.K = TypeKind::Pointer;
  T.Pointee = Pointee;
  Derived.push_back(T);
  return &Derived.back();
}

CTypeRef TypeContext::getArray(CTypeRef Elem, uint32_t Len) {
  for (const CType &T : Derived)
    if (T.K == TypeKind::Array && T.Elem == Elem && T.ArrayLen == Len)
      return &T;
  CType T;
  T.K = TypeKind::Array;
  T.Elem = Elem;
  T.ArrayLen = Len;
  Derived.push_back(T);
  return &Derived.back();
}

CTypeRef TypeContext::getFunc(CTypeRef Ret, std::vector<CTypeRef> Params) {
  for (const CType &T : Derived) {
    if (T.K != TypeKind::Func || T.Ret != Ret ||
        T.Params.size() != Params.size())
      continue;
    bool Same = true;
    for (size_t I = 0; I < Params.size(); ++I)
      if (T.Params[I] != Params[I])
        Same = false;
    if (Same)
      return &T;
  }
  CType T;
  T.K = TypeKind::Func;
  T.Ret = Ret;
  T.Params = std::move(Params);
  Derived.push_back(T);
  return &Derived.back();
}

CTypeRef TypeContext::getStruct(StructDef *Def) {
  for (const CType &T : Derived)
    if (T.K == TypeKind::Struct && T.SD == Def)
      return &T;
  CType T;
  T.K = TypeKind::Struct;
  T.SD = Def;
  Derived.push_back(T);
  return &Derived.back();
}

StructDef *TypeContext::createStruct(std::string Name) {
  Structs.push_back(StructDef());
  Structs.back().Name = std::move(Name);
  return &Structs.back();
}

uint32_t omni::minic::typeSize(CTypeRef T) {
  switch (T->K) {
  case TypeKind::Void:
    return 0;
  case TypeKind::Char:
  case TypeKind::UChar:
    return 1;
  case TypeKind::Short:
  case TypeKind::UShort:
    return 2;
  case TypeKind::Int:
  case TypeKind::UInt:
  case TypeKind::Float:
  case TypeKind::Pointer:
    return 4;
  case TypeKind::Double:
    return 8;
  case TypeKind::Array:
    return typeSize(T->Elem) * T->ArrayLen;
  case TypeKind::Struct:
    assert(T->SD->Complete && "sizeof incomplete struct");
    return T->SD->Size;
  case TypeKind::Func:
    return 4; // decays to pointer
  }
  return 0;
}

uint32_t omni::minic::typeAlign(CTypeRef T) {
  switch (T->K) {
  case TypeKind::Array:
    return typeAlign(T->Elem);
  case TypeKind::Struct:
    return T->SD->Align;
  case TypeKind::Double:
    return 8;
  default: {
    uint32_t S = typeSize(T);
    return S == 0 ? 1 : S;
  }
  }
}

bool omni::minic::isIntegerType(CTypeRef T) {
  switch (T->K) {
  case TypeKind::Char:
  case TypeKind::UChar:
  case TypeKind::Short:
  case TypeKind::UShort:
  case TypeKind::Int:
  case TypeKind::UInt:
    return true;
  default:
    return false;
  }
}

bool omni::minic::isSignedIntType(CTypeRef T) {
  return T->K == TypeKind::Char || T->K == TypeKind::Short ||
         T->K == TypeKind::Int;
}

bool omni::minic::isFloatType(CTypeRef T) {
  return T->K == TypeKind::Float || T->K == TypeKind::Double;
}

bool omni::minic::isArithType(CTypeRef T) {
  return isIntegerType(T) || isFloatType(T);
}

bool omni::minic::isPointerType(CTypeRef T) {
  return T->K == TypeKind::Pointer;
}

bool omni::minic::isScalarType(CTypeRef T) {
  return isArithType(T) || isPointerType(T);
}

bool omni::minic::isVoidType(CTypeRef T) { return T->K == TypeKind::Void; }

bool omni::minic::typesEqual(CTypeRef A, CTypeRef B) {
  if (A == B)
    return true;
  if (A->K != B->K)
    return false;
  switch (A->K) {
  case TypeKind::Pointer:
    return typesEqual(A->Pointee, B->Pointee);
  case TypeKind::Array:
    return A->ArrayLen == B->ArrayLen && typesEqual(A->Elem, B->Elem);
  case TypeKind::Struct:
    return A->SD == B->SD;
  case TypeKind::Func: {
    if (!typesEqual(A->Ret, B->Ret) || A->Params.size() != B->Params.size())
      return false;
    for (size_t I = 0; I < A->Params.size(); ++I)
      if (!typesEqual(A->Params[I], B->Params[I]))
        return false;
    return true;
  }
  default:
    return true; // same basic kind
  }
}

ir::Type omni::minic::irTypeOf(CTypeRef T) {
  switch (T->K) {
  case TypeKind::Float:
    return ir::Type::F32;
  case TypeKind::Double:
    return ir::Type::F64;
  default:
    return ir::Type::I32;
  }
}

ir::MemWidth omni::minic::memWidthOf(CTypeRef T) {
  switch (T->K) {
  case TypeKind::Char:
  case TypeKind::UChar:
    return ir::MemWidth::W8;
  case TypeKind::Short:
  case TypeKind::UShort:
    return ir::MemWidth::W16;
  case TypeKind::Float:
    return ir::MemWidth::F32;
  case TypeKind::Double:
    return ir::MemWidth::F64;
  default:
    return ir::MemWidth::W32;
  }
}

std::string omni::minic::typeName(CTypeRef T) {
  switch (T->K) {
  case TypeKind::Void:
    return "void";
  case TypeKind::Char:
    return "char";
  case TypeKind::UChar:
    return "unsigned char";
  case TypeKind::Short:
    return "short";
  case TypeKind::UShort:
    return "unsigned short";
  case TypeKind::Int:
    return "int";
  case TypeKind::UInt:
    return "unsigned int";
  case TypeKind::Float:
    return "float";
  case TypeKind::Double:
    return "double";
  case TypeKind::Pointer:
    return typeName(T->Pointee) + " *";
  case TypeKind::Array:
    return formatStr("%s [%u]", typeName(T->Elem).c_str(), T->ArrayLen);
  case TypeKind::Struct:
    return "struct " + T->SD->Name;
  case TypeKind::Func: {
    std::string S = typeName(T->Ret) + " (";
    for (size_t I = 0; I < T->Params.size(); ++I) {
      if (I)
        S += ", ";
      S += typeName(T->Params[I]);
    }
    return S + ")";
  }
  }
  return "?";
}
