//===- frontend/Lexer.h - MiniC lexer ---------------------------*- C++ -*-===//
///
/// \file
/// Tokenizer for MiniC, the C subset used to author mobile-code modules in
/// this reproduction (standing in for the retargeted gcc of the paper).
///
//===----------------------------------------------------------------------===//
#ifndef OMNI_FRONTEND_LEXER_H
#define OMNI_FRONTEND_LEXER_H

#include "support/Diagnostics.h"

#include <cstdint>
#include <string>
#include <vector>

namespace omni {
namespace minic {

enum class Tok : uint8_t {
  End,
  Identifier,
  IntLiteral,
  FloatLiteral, ///< has 'f' suffix => float, else double
  CharLiteral,
  StringLiteral,

  // Keywords.
  KwVoid, KwChar, KwShort, KwInt, KwUnsigned, KwSigned, KwFloat, KwDouble,
  KwStruct, KwEnum, KwIf, KwElse, KwWhile, KwDo, KwFor, KwReturn, KwBreak,
  KwContinue, KwSizeof, KwSwitch, KwCase, KwDefault, KwConst, KwStatic,
  KwExtern, KwLong,

  // Punctuation / operators.
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Semi, Comma, Dot, Arrow, Ellipsis,
  Plus, Minus, Star, Slash, Percent,
  PlusPlus, MinusMinus,
  Amp, Pipe, Caret, Tilde, Bang,
  Shl, Shr,
  Lt, Gt, Le, Ge, EqEq, NotEq,
  AmpAmp, PipePipe,
  Question, Colon,
  Assign, PlusAssign, MinusAssign, StarAssign, SlashAssign, PercentAssign,
  ShlAssign, ShrAssign, AmpAssign, PipeAssign, CaretAssign,
};

/// One token with its source location and decoded payload.
struct Token {
  Tok Kind = Tok::End;
  SourceLoc Loc;
  std::string Text;    ///< identifier / raw text
  int64_t IntValue = 0;
  double FloatValue = 0;
  bool IsFloatSuffix = false; ///< FloatLiteral had 'f'
  std::string StrValue;       ///< decoded string literal bytes
};

/// Tokenizes \p Source; reports malformed tokens to \p Diags. The returned
/// stream is always terminated by a Tok::End token.
std::vector<Token> tokenize(const std::string &Source,
                            DiagnosticEngine &Diags);

/// Printable token-kind name for diagnostics.
const char *getTokenName(Tok Kind);

} // namespace minic
} // namespace omni

#endif // OMNI_FRONTEND_LEXER_H
