//===- frontend/forth/ForthCompiler.h - Forth -> OmniVM asm -----*- C++ -*-===//
///
/// \file
/// A deliberately tiny third frontend: a Forth dialect compiled straight
/// to OmniVM assembly text. It exists to make the paper's §2 argument
/// concrete — the substrate enforces safety with SFI, so even a stack
/// language with no type system at all produces modules exactly as safe
/// and as portable as MiniC or Pascal output. FRONTENDS.md walks through
/// this compiler as the minimal worked example of the frontend contract.
///
/// Supported words: integer literals, `+ - * / mod`, `dup swap drop
/// over`, `.` (print top + space), `cr`, and colon definitions
/// `: name ... ;`. The data stack lives in the module's bss, addressed by
/// r1; r2/r3 are working registers; each colon definition becomes an
/// OmniVM function.
///
//===----------------------------------------------------------------------===//
#ifndef OMNI_FRONTEND_FORTH_FORTHCOMPILER_H
#define OMNI_FRONTEND_FORTH_FORTHCOMPILER_H

#include <map>
#include <string>

namespace omni {
namespace forth {

/// Compiles a Forth-dialect program to OmniVM assembly text (assemble it
/// with vm::assemble, then link/verify/translate like any other module).
class ForthCompiler {
public:
  /// Returns false and sets \p Error on malformed input; on success
  /// \p AsmOut holds a complete assembly module exporting `main`.
  bool compile(const std::string &Source, std::string &AsmOut,
               std::string &Error);

private:
  std::string &sink();
  void push(const char *Reg);
  void pop(const char *Reg);
  bool emitWord(const std::string &Tok, std::string &Error);

  std::string Out, Main, Def, CurName;
  std::map<std::string, std::string> Words;
  bool InDef = false;
};

} // namespace forth
} // namespace omni

#endif // OMNI_FRONTEND_FORTH_FORTHCOMPILER_H
