//===- frontend/forth/ForthCompiler.cpp -----------------------------------===//

#include "frontend/forth/ForthCompiler.h"

#include "support/Format.h"

#include <cstdlib>
#include <sstream>

using namespace omni;
using namespace omni::forth;

bool ForthCompiler::compile(const std::string &Source, std::string &AsmOut,
                            std::string &Error) {
  Out = "        .import print_int\n"
        "        .import print_char\n"
        "        .bss\n"
        "dstack: .space 4096\n"
        "        .text\n";
  Main = "        .global main\n"
         "main:   sub sp, sp, 8\n"
         "        sw ra, 0(sp)\n"
         "        la r1, dstack\n";
  Def.clear();
  CurName.clear();
  Words.clear();
  InDef = false;

  std::istringstream In(Source);
  std::string Tok;
  while (In >> Tok) {
    if (Tok == ":") {
      if (InDef) {
        Error = "nested definitions are not supported";
        return false;
      }
      if (!(In >> CurName)) {
        Error = "missing name after ':'";
        return false;
      }
      InDef = true;
      Def = formatStr("f_%s:\n", CurName.c_str());
      Def += "        sub sp, sp, 8\n        sw ra, 0(sp)\n";
      continue;
    }
    if (Tok == ";") {
      if (!InDef) {
        Error = "';' outside a definition";
        return false;
      }
      Def += "        lw ra, 0(sp)\n        add sp, sp, 8\n"
             "        jr ra\n";
      Out += Def;
      Words[CurName] = "f_" + CurName;
      InDef = false;
      continue;
    }
    if (!emitWord(Tok, Error))
      return false;
  }
  if (InDef) {
    Error = "unterminated definition '" + CurName + "'";
    return false;
  }
  Main += "        li r0, 0\n        lw ra, 0(sp)\n"
          "        add sp, sp, 8\n        jr ra\n";
  AsmOut = Out + Main;
  return true;
}

std::string &ForthCompiler::sink() { return InDef ? Def : Main; }

void ForthCompiler::push(const char *Reg) {
  appendFormat(sink(), "        sw %s, 0(r1)\n        add r1, r1, 4\n", Reg);
}

void ForthCompiler::pop(const char *Reg) {
  appendFormat(sink(), "        sub r1, r1, 4\n        lw %s, 0(r1)\n", Reg);
}

bool ForthCompiler::emitWord(const std::string &Tok, std::string &Error) {
  // Integer literal?
  char *End = nullptr;
  long V = std::strtol(Tok.c_str(), &End, 10);
  if (End && *End == '\0' && End != Tok.c_str()) {
    appendFormat(sink(), "        li r2, %ld\n", V);
    push("r2");
    return true;
  }
  static const std::map<std::string, const char *> BinOps = {
      {"+", "add"}, {"-", "sub"}, {"*", "mul"}, {"/", "div"},
      {"mod", "rem"}};
  auto BO = BinOps.find(Tok);
  if (BO != BinOps.end()) {
    pop("r3");
    pop("r2");
    appendFormat(sink(), "        %s r2, r2, r3\n", BO->second);
    push("r2");
    return true;
  }
  if (Tok == "dup") {
    pop("r2");
    push("r2");
    push("r2");
    return true;
  }
  if (Tok == "swap") {
    pop("r3");
    pop("r2");
    push("r3");
    push("r2");
    return true;
  }
  if (Tok == "over") {
    pop("r3");
    pop("r2");
    push("r2");
    push("r3");
    push("r2");
    return true;
  }
  if (Tok == "drop") {
    pop("r2");
    return true;
  }
  if (Tok == ".") {
    pop("r0");
    sink() += "        hcall print_int\n"
              "        li r0, ' '\n        hcall print_char\n";
    return true;
  }
  if (Tok == "cr") {
    sink() += "        li r0, '\\n'\n        hcall print_char\n";
    return true;
  }
  auto W = Words.find(Tok);
  if (W != Words.end()) {
    appendFormat(sink(), "        jal %s\n", W->second.c_str());
    return true;
  }
  Error = "unknown word '" + Tok + "'";
  return false;
}
