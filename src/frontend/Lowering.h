//===- frontend/Lowering.h - AST to IR lowering ------------------*- C++ -*-===//
///
/// \file
/// Lowers a type-checked MiniC translation unit to the machine-independent
/// IR. Data layout becomes fully explicit here (struct offsets, array
/// strides, pointer scaling), which is exactly the property OmniVM's design
/// exploits: the compiler decides layout, the translator only emits code.
///
/// Functions that are declared but never defined become *imports* — host
/// functions reached through Omniware call gates.
///
//===----------------------------------------------------------------------===//
#ifndef OMNI_FRONTEND_LOWERING_H
#define OMNI_FRONTEND_LOWERING_H

#include "frontend/AST.h"
#include "ir/IR.h"

namespace omni {
namespace minic {

/// Lowers \p TU into \p Out. Returns false when \p Diags received errors
/// (non-constant global initializers, unsupported constructs).
bool lowerToIR(TranslationUnit &TU, ir::Program &Out,
               DiagnosticEngine &Diags);

} // namespace minic
} // namespace omni

#endif // OMNI_FRONTEND_LOWERING_H
