//===- frontend/Types.h - MiniC type system ---------------------*- C++ -*-===//
///
/// \file
/// C-level types for MiniC. OmniVM defines the sizes of primitive types
/// (paper §3.3), so layout decisions — struct padding, array strides,
/// pointer width — are made here in the compiler and become explicit
/// address arithmetic in the IR.
///
//===----------------------------------------------------------------------===//
#ifndef OMNI_FRONTEND_TYPES_H
#define OMNI_FRONTEND_TYPES_H

#include "ir/IR.h"

#include <deque>
#include <memory>
#include <string>
#include <vector>

namespace omni {
namespace minic {

enum class TypeKind : uint8_t {
  Void,
  Char,   ///< signed 8-bit
  UChar,
  Short,  ///< signed 16-bit
  UShort,
  Int,    ///< signed 32-bit
  UInt,
  Float,  ///< IEEE single
  Double, ///< IEEE double
  Pointer,
  Array,
  Struct,
  Func,
};

struct CType;
struct StructDef;
using CTypeRef = const CType *;

/// A MiniC type. Instances are interned/owned by TypeContext; identity
/// comparison is not used — use typesEqual.
struct CType {
  TypeKind K = TypeKind::Int;
  CTypeRef Pointee = nullptr;          ///< Pointer
  CTypeRef Elem = nullptr;             ///< Array
  uint32_t ArrayLen = 0;               ///< Array (0 = unsized, e.g. extern)
  StructDef *SD = nullptr;             ///< Struct
  CTypeRef Ret = nullptr;              ///< Func
  std::vector<CTypeRef> Params;        ///< Func
};

/// A struct definition with computed layout.
struct StructDef {
  struct Field {
    std::string Name;
    CTypeRef Ty;
    uint32_t Offset;
  };
  std::string Name;
  std::vector<Field> Fields;
  uint32_t Size = 0;
  uint32_t Align = 1;
  bool Complete = false;

  const Field *findField(const std::string &FieldName) const {
    for (const Field &F : Fields)
      if (F.Name == FieldName)
        return &F;
    return nullptr;
  }
};

/// Owns and interns types for one translation unit.
class TypeContext {
public:
  TypeContext();

  CTypeRef voidTy() const { return &Basic[0]; }
  CTypeRef charTy() const { return &Basic[1]; }
  CTypeRef ucharTy() const { return &Basic[2]; }
  CTypeRef shortTy() const { return &Basic[3]; }
  CTypeRef ushortTy() const { return &Basic[4]; }
  CTypeRef intTy() const { return &Basic[5]; }
  CTypeRef uintTy() const { return &Basic[6]; }
  CTypeRef floatTy() const { return &Basic[7]; }
  CTypeRef doubleTy() const { return &Basic[8]; }

  CTypeRef getPointer(CTypeRef Pointee);
  CTypeRef getArray(CTypeRef Elem, uint32_t Len);
  CTypeRef getFunc(CTypeRef Ret, std::vector<CTypeRef> Params);
  /// Creates (or retrieves) the struct type for \p Def.
  CTypeRef getStruct(StructDef *Def);
  /// Allocates a new struct definition (layout filled by the parser).
  StructDef *createStruct(std::string Name);

private:
  CType Basic[9];
  std::deque<CType> Derived;    ///< stable addresses
  std::deque<StructDef> Structs;
};

/// Size/alignment queries (pointer = 4 bytes, as OmniVM defines).
uint32_t typeSize(CTypeRef T);
uint32_t typeAlign(CTypeRef T);

bool isIntegerType(CTypeRef T);
bool isSignedIntType(CTypeRef T);
bool isFloatType(CTypeRef T);  ///< float or double
bool isArithType(CTypeRef T);
bool isPointerType(CTypeRef T);
/// Scalar = arithmetic or pointer (usable in conditions).
bool isScalarType(CTypeRef T);
bool isVoidType(CTypeRef T);

/// Structural type equality.
bool typesEqual(CTypeRef A, CTypeRef B);

/// The IR register type used to hold a value of C type \p T
/// (narrow integers widen to I32 in registers).
ir::Type irTypeOf(CTypeRef T);

/// The memory access width for loading/storing a value of C type \p T.
ir::MemWidth memWidthOf(CTypeRef T);

/// Readable type name for diagnostics ("int *", "struct point", ...).
std::string typeName(CTypeRef T);

} // namespace minic
} // namespace omni

#endif // OMNI_FRONTEND_TYPES_H
