//===- frontend/Lexer.cpp -------------------------------------------------===//

#include "frontend/Lexer.h"

#include "support/Format.h"

#include <cctype>
#include <map>

using namespace omni;
using namespace omni::minic;

namespace {

const std::map<std::string, Tok> &keywordTable() {
  static const std::map<std::string, Tok> Table = {
      {"void", Tok::KwVoid},         {"char", Tok::KwChar},
      {"short", Tok::KwShort},       {"int", Tok::KwInt},
      {"unsigned", Tok::KwUnsigned}, {"signed", Tok::KwSigned},
      {"float", Tok::KwFloat},       {"double", Tok::KwDouble},
      {"struct", Tok::KwStruct},     {"enum", Tok::KwEnum},
      {"if", Tok::KwIf},             {"else", Tok::KwElse},
      {"while", Tok::KwWhile},       {"do", Tok::KwDo},
      {"for", Tok::KwFor},           {"return", Tok::KwReturn},
      {"break", Tok::KwBreak},       {"continue", Tok::KwContinue},
      {"sizeof", Tok::KwSizeof},     {"switch", Tok::KwSwitch},
      {"case", Tok::KwCase},         {"default", Tok::KwDefault},
      {"const", Tok::KwConst},       {"static", Tok::KwStatic},
      {"extern", Tok::KwExtern},     {"long", Tok::KwLong},
  };
  return Table;
}

class LexerImpl {
public:
  LexerImpl(const std::string &Src, DiagnosticEngine &Diags)
      : Src(Src), Diags(Diags) {}

  std::vector<Token> run();

private:
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }
  char advance() {
    char C = Src[Pos++];
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    return C;
  }
  bool match(char C) {
    if (peek() != C)
      return false;
    advance();
    return true;
  }
  SourceLoc loc() const { return {Line, Col}; }

  void skipWhitespaceAndComments();
  Token lexNumber();
  Token lexIdentifier();
  Token lexCharLiteral();
  Token lexStringLiteral();
  /// Decodes one escape sequence after a backslash.
  char lexEscape();

  const std::string &Src;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  unsigned Line = 1, Col = 1;
};

void LexerImpl::skipWhitespaceAndComments() {
  while (Pos < Src.size()) {
    char C = peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (Pos < Src.size() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLoc Start = loc();
      advance();
      advance();
      bool Closed = false;
      while (Pos < Src.size()) {
        if (peek() == '*' && peek(1) == '/') {
          advance();
          advance();
          Closed = true;
          break;
        }
        advance();
      }
      if (!Closed)
        Diags.error(Start, "unterminated block comment");
      continue;
    }
    // Preprocessor lines are not supported; skip them with a warning so
    // pasted C code degrades gracefully.
    if (C == '#' && (Col == 1)) {
      Diags.warning(loc(), "preprocessor directives are ignored");
      while (Pos < Src.size() && peek() != '\n')
        advance();
      continue;
    }
    break;
  }
}

Token LexerImpl::lexNumber() {
  Token T;
  T.Loc = loc();
  std::string Digits;
  bool IsHex = false;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    IsHex = true;
    advance();
    advance();
    while (std::isxdigit(static_cast<unsigned char>(peek())))
      Digits.push_back(advance());
    if (Digits.empty())
      Diags.error(T.Loc, "malformed hex literal");
    T.Kind = Tok::IntLiteral;
    T.IntValue = static_cast<int64_t>(std::strtoull(Digits.c_str(),
                                                    nullptr, 16));
    return T;
  }
  while (std::isdigit(static_cast<unsigned char>(peek())))
    Digits.push_back(advance());
  bool IsFloat = false;
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    IsFloat = true;
    Digits.push_back(advance());
    while (std::isdigit(static_cast<unsigned char>(peek())))
      Digits.push_back(advance());
  } else if (peek() == '.' && !IsHex) {
    IsFloat = true;
    Digits.push_back(advance());
  }
  if (peek() == 'e' || peek() == 'E') {
    IsFloat = true;
    Digits.push_back(advance());
    if (peek() == '+' || peek() == '-')
      Digits.push_back(advance());
    while (std::isdigit(static_cast<unsigned char>(peek())))
      Digits.push_back(advance());
  }
  if (IsFloat) {
    T.Kind = Tok::FloatLiteral;
    T.FloatValue = std::strtod(Digits.c_str(), nullptr);
    if (peek() == 'f' || peek() == 'F') {
      advance();
      T.IsFloatSuffix = true;
    }
  } else {
    T.Kind = Tok::IntLiteral;
    T.IntValue = static_cast<int64_t>(std::strtoull(Digits.c_str(),
                                                    nullptr, 10));
    // Accept (and ignore) u/l suffixes.
    while (peek() == 'u' || peek() == 'U' || peek() == 'l' || peek() == 'L')
      advance();
  }
  return T;
}

Token LexerImpl::lexIdentifier() {
  Token T;
  T.Loc = loc();
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    T.Text.push_back(advance());
  auto It = keywordTable().find(T.Text);
  T.Kind = It != keywordTable().end() ? It->second : Tok::Identifier;
  return T;
}

char LexerImpl::lexEscape() {
  char C = advance();
  switch (C) {
  case 'n':
    return '\n';
  case 't':
    return '\t';
  case 'r':
    return '\r';
  case '0':
    return '\0';
  case '\\':
    return '\\';
  case '\'':
    return '\'';
  case '"':
    return '"';
  default:
    Diags.error(loc(), formatStr("unknown escape '\\%c'", C));
    return C;
  }
}

Token LexerImpl::lexCharLiteral() {
  Token T;
  T.Loc = loc();
  T.Kind = Tok::CharLiteral;
  advance(); // opening quote
  char C;
  if (peek() == '\\') {
    advance();
    C = lexEscape();
  } else if (peek() == '\0' || peek() == '\n') {
    Diags.error(T.Loc, "unterminated character literal");
    return T;
  } else {
    C = advance();
  }
  T.IntValue = static_cast<unsigned char>(C);
  if (!match('\''))
    Diags.error(T.Loc, "unterminated character literal");
  return T;
}

Token LexerImpl::lexStringLiteral() {
  Token T;
  T.Loc = loc();
  T.Kind = Tok::StringLiteral;
  advance(); // opening quote
  while (true) {
    char C = peek();
    if (C == '\0' || C == '\n') {
      Diags.error(T.Loc, "unterminated string literal");
      break;
    }
    advance();
    if (C == '"')
      break;
    if (C == '\\')
      C = lexEscape();
    T.StrValue.push_back(C);
  }
  return T;
}

std::vector<Token> LexerImpl::run() {
  std::vector<Token> Out;
  while (true) {
    skipWhitespaceAndComments();
    if (Pos >= Src.size())
      break;
    char C = peek();
    if (std::isdigit(static_cast<unsigned char>(C))) {
      Out.push_back(lexNumber());
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      Out.push_back(lexIdentifier());
      continue;
    }
    if (C == '\'') {
      Out.push_back(lexCharLiteral());
      continue;
    }
    if (C == '"') {
      Out.push_back(lexStringLiteral());
      continue;
    }

    Token T;
    T.Loc = loc();
    advance();
    switch (C) {
    case '(':
      T.Kind = Tok::LParen;
      break;
    case ')':
      T.Kind = Tok::RParen;
      break;
    case '{':
      T.Kind = Tok::LBrace;
      break;
    case '}':
      T.Kind = Tok::RBrace;
      break;
    case '[':
      T.Kind = Tok::LBracket;
      break;
    case ']':
      T.Kind = Tok::RBracket;
      break;
    case ';':
      T.Kind = Tok::Semi;
      break;
    case ',':
      T.Kind = Tok::Comma;
      break;
    case '.':
      if (peek() == '.' && peek(1) == '.') {
        advance();
        advance();
        T.Kind = Tok::Ellipsis;
      } else {
        T.Kind = Tok::Dot;
      }
      break;
    case '+':
      T.Kind = match('+')   ? Tok::PlusPlus
               : match('=') ? Tok::PlusAssign
                            : Tok::Plus;
      break;
    case '-':
      T.Kind = match('-')   ? Tok::MinusMinus
               : match('=') ? Tok::MinusAssign
               : match('>') ? Tok::Arrow
                            : Tok::Minus;
      break;
    case '*':
      T.Kind = match('=') ? Tok::StarAssign : Tok::Star;
      break;
    case '/':
      T.Kind = match('=') ? Tok::SlashAssign : Tok::Slash;
      break;
    case '%':
      T.Kind = match('=') ? Tok::PercentAssign : Tok::Percent;
      break;
    case '&':
      T.Kind = match('&')   ? Tok::AmpAmp
               : match('=') ? Tok::AmpAssign
                            : Tok::Amp;
      break;
    case '|':
      T.Kind = match('|')   ? Tok::PipePipe
               : match('=') ? Tok::PipeAssign
                            : Tok::Pipe;
      break;
    case '^':
      T.Kind = match('=') ? Tok::CaretAssign : Tok::Caret;
      break;
    case '~':
      T.Kind = Tok::Tilde;
      break;
    case '!':
      T.Kind = match('=') ? Tok::NotEq : Tok::Bang;
      break;
    case '<':
      if (match('<'))
        T.Kind = match('=') ? Tok::ShlAssign : Tok::Shl;
      else
        T.Kind = match('=') ? Tok::Le : Tok::Lt;
      break;
    case '>':
      if (match('>'))
        T.Kind = match('=') ? Tok::ShrAssign : Tok::Shr;
      else
        T.Kind = match('=') ? Tok::Ge : Tok::Gt;
      break;
    case '=':
      T.Kind = match('=') ? Tok::EqEq : Tok::Assign;
      break;
    case '?':
      T.Kind = Tok::Question;
      break;
    case ':':
      T.Kind = Tok::Colon;
      break;
    default:
      Diags.error(T.Loc, formatStr("unexpected character '%c'", C));
      continue;
    }
    Out.push_back(T);
  }
  Token End;
  End.Kind = Tok::End;
  End.Loc = loc();
  Out.push_back(End);
  return Out;
}

} // namespace

std::vector<Token> omni::minic::tokenize(const std::string &Source,
                                         DiagnosticEngine &Diags) {
  LexerImpl L(Source, Diags);
  return L.run();
}

const char *omni::minic::getTokenName(Tok Kind) {
  switch (Kind) {
  case Tok::End:
    return "end of input";
  case Tok::Identifier:
    return "identifier";
  case Tok::IntLiteral:
    return "integer literal";
  case Tok::FloatLiteral:
    return "float literal";
  case Tok::CharLiteral:
    return "character literal";
  case Tok::StringLiteral:
    return "string literal";
  case Tok::KwVoid:
    return "'void'";
  case Tok::KwChar:
    return "'char'";
  case Tok::KwShort:
    return "'short'";
  case Tok::KwInt:
    return "'int'";
  case Tok::KwUnsigned:
    return "'unsigned'";
  case Tok::KwSigned:
    return "'signed'";
  case Tok::KwFloat:
    return "'float'";
  case Tok::KwDouble:
    return "'double'";
  case Tok::KwStruct:
    return "'struct'";
  case Tok::KwEnum:
    return "'enum'";
  case Tok::KwIf:
    return "'if'";
  case Tok::KwElse:
    return "'else'";
  case Tok::KwWhile:
    return "'while'";
  case Tok::KwDo:
    return "'do'";
  case Tok::KwFor:
    return "'for'";
  case Tok::KwReturn:
    return "'return'";
  case Tok::KwBreak:
    return "'break'";
  case Tok::KwContinue:
    return "'continue'";
  case Tok::KwSizeof:
    return "'sizeof'";
  case Tok::KwSwitch:
    return "'switch'";
  case Tok::KwCase:
    return "'case'";
  case Tok::KwDefault:
    return "'default'";
  case Tok::KwConst:
    return "'const'";
  case Tok::KwStatic:
    return "'static'";
  case Tok::KwExtern:
    return "'extern'";
  case Tok::KwLong:
    return "'long'";
  case Tok::LParen:
    return "'('";
  case Tok::RParen:
    return "')'";
  case Tok::LBrace:
    return "'{'";
  case Tok::RBrace:
    return "'}'";
  case Tok::LBracket:
    return "'['";
  case Tok::RBracket:
    return "']'";
  case Tok::Semi:
    return "';'";
  case Tok::Comma:
    return "','";
  case Tok::Dot:
    return "'.'";
  case Tok::Arrow:
    return "'->'";
  case Tok::Ellipsis:
    return "'...'";
  case Tok::Plus:
    return "'+'";
  case Tok::Minus:
    return "'-'";
  case Tok::Star:
    return "'*'";
  case Tok::Slash:
    return "'/'";
  case Tok::Percent:
    return "'%'";
  case Tok::PlusPlus:
    return "'++'";
  case Tok::MinusMinus:
    return "'--'";
  case Tok::Amp:
    return "'&'";
  case Tok::Pipe:
    return "'|'";
  case Tok::Caret:
    return "'^'";
  case Tok::Tilde:
    return "'~'";
  case Tok::Bang:
    return "'!'";
  case Tok::Shl:
    return "'<<'";
  case Tok::Shr:
    return "'>>'";
  case Tok::Lt:
    return "'<'";
  case Tok::Gt:
    return "'>'";
  case Tok::Le:
    return "'<='";
  case Tok::Ge:
    return "'>='";
  case Tok::EqEq:
    return "'=='";
  case Tok::NotEq:
    return "'!='";
  case Tok::AmpAmp:
    return "'&&'";
  case Tok::PipePipe:
    return "'||'";
  case Tok::Question:
    return "'?'";
  case Tok::Colon:
    return "':'";
  case Tok::Assign:
    return "'='";
  case Tok::PlusAssign:
    return "'+='";
  case Tok::MinusAssign:
    return "'-='";
  case Tok::StarAssign:
    return "'*='";
  case Tok::SlashAssign:
    return "'/='";
  case Tok::PercentAssign:
    return "'%='";
  case Tok::ShlAssign:
    return "'<<='";
  case Tok::ShrAssign:
    return "'>>='";
  case Tok::AmpAssign:
    return "'&='";
  case Tok::PipeAssign:
    return "'|='";
  case Tok::CaretAssign:
    return "'^='";
  }
  return "?";
}
