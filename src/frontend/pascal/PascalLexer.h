//===- frontend/pascal/PascalLexer.h - Pascal lexer -------------*- C++ -*-===//
///
/// \file
/// Tokenizer for the Pascal frontend — the second real source language on
/// the OmniVM substrate (the paper's language-independence claim, §2).
/// Classic Pascal surface: case-insensitive keywords and identifiers,
/// `{ }` and `(* *)` comments, `$`-prefixed hex literals, quoted char and
/// string literals with `''` escaping.
///
//===----------------------------------------------------------------------===//
#ifndef OMNI_FRONTEND_PASCAL_PASCALLEXER_H
#define OMNI_FRONTEND_PASCAL_PASCALLEXER_H

#include "support/Diagnostics.h"

#include <cstdint>
#include <string>
#include <vector>

namespace omni {
namespace pascal {

enum class PTok : uint8_t {
  End,
  Ident,
  IntLit,
  RealLit,
  CharLit,
  StrLit,

  // Keywords (case-insensitive in source).
  KwProgram, KwConst, KwVar, KwProcedure, KwFunction, KwBegin, KwEnd,
  KwIf, KwThen, KwElse, KwWhile, KwDo, KwFor, KwTo, KwDownto, KwRepeat,
  KwUntil, KwDiv, KwMod, KwAnd, KwOr, KwXor, KwNot, KwShl, KwShr,
  KwArray, KwOf, KwInteger, KwReal, KwBoolean, KwChar, KwTrue, KwFalse,

  // Punctuation / operators.
  Plus, Minus, Star, Slash,
  Eq, Ne, Lt, Le, Gt, Ge,
  LParen, RParen, LBracket, RBracket,
  Comma, Semi, Colon, Assign, DotDot, Dot,
};

/// One token with its source location and decoded payload.
struct PToken {
  PTok Kind = PTok::End;
  SourceLoc Loc;
  std::string Text;    ///< identifier, lowercased (Pascal is case-blind)
  int64_t IntValue = 0;
  double RealValue = 0;
  std::string StrValue; ///< decoded char/string literal bytes
};

/// Tokenizes \p Source; reports malformed tokens to \p Diags. The returned
/// stream is always terminated by a PTok::End token.
std::vector<PToken> tokenize(const std::string &Source,
                             DiagnosticEngine &Diags);

/// Printable token-kind name for diagnostics.
const char *getTokenName(PTok Kind);

} // namespace pascal
} // namespace omni

#endif // OMNI_FRONTEND_PASCAL_PASCALLEXER_H
