//===- frontend/pascal/PascalLexer.cpp ------------------------------------===//

#include "frontend/pascal/PascalLexer.h"

#include <cctype>
#include <cstdlib>
#include <map>

using namespace omni;
using namespace omni::pascal;

namespace {

const std::map<std::string, PTok> &keywordTable() {
  static const std::map<std::string, PTok> Table = {
      {"program", PTok::KwProgram}, {"const", PTok::KwConst},
      {"var", PTok::KwVar},         {"procedure", PTok::KwProcedure},
      {"function", PTok::KwFunction}, {"begin", PTok::KwBegin},
      {"end", PTok::KwEnd},         {"if", PTok::KwIf},
      {"then", PTok::KwThen},       {"else", PTok::KwElse},
      {"while", PTok::KwWhile},     {"do", PTok::KwDo},
      {"for", PTok::KwFor},         {"to", PTok::KwTo},
      {"downto", PTok::KwDownto},   {"repeat", PTok::KwRepeat},
      {"until", PTok::KwUntil},     {"div", PTok::KwDiv},
      {"mod", PTok::KwMod},         {"and", PTok::KwAnd},
      {"or", PTok::KwOr},           {"xor", PTok::KwXor},
      {"not", PTok::KwNot},         {"shl", PTok::KwShl},
      {"shr", PTok::KwShr},         {"array", PTok::KwArray},
      {"of", PTok::KwOf},           {"integer", PTok::KwInteger},
      {"real", PTok::KwReal},       {"boolean", PTok::KwBoolean},
      {"char", PTok::KwChar},       {"true", PTok::KwTrue},
      {"false", PTok::KwFalse},
  };
  return Table;
}

class Lexer {
public:
  Lexer(const std::string &Source, DiagnosticEngine &Diags)
      : Src(Source), Diags(Diags) {}

  std::vector<PToken> run() {
    std::vector<PToken> Out;
    for (;;) {
      skipTrivia();
      PToken T;
      T.Loc = loc();
      if (atEnd()) {
        T.Kind = PTok::End;
        Out.push_back(T);
        return Out;
      }
      lexOne(T);
      Out.push_back(std::move(T));
    }
  }

private:
  bool atEnd() const { return Pos >= Src.size(); }
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }
  char take() {
    char C = Src[Pos++];
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    return C;
  }
  SourceLoc loc() const { return SourceLoc{Line, Col}; }

  void skipTrivia() {
    for (;;) {
      if (atEnd())
        return;
      char C = peek();
      if (std::isspace(static_cast<unsigned char>(C))) {
        take();
        continue;
      }
      if (C == '{') {
        SourceLoc Start = loc();
        take();
        while (!atEnd() && peek() != '}')
          take();
        if (atEnd()) {
          Diags.error(Start, "unterminated '{' comment");
          return;
        }
        take();
        continue;
      }
      if (C == '(' && peek(1) == '*') {
        SourceLoc Start = loc();
        take();
        take();
        while (!atEnd() && !(peek() == '*' && peek(1) == ')'))
          take();
        if (atEnd()) {
          Diags.error(Start, "unterminated '(*' comment");
          return;
        }
        take();
        take();
        continue;
      }
      return;
    }
  }

  void lexOne(PToken &T) {
    char C = peek();
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      std::string Word;
      while (!atEnd() &&
             (std::isalnum(static_cast<unsigned char>(peek())) ||
              peek() == '_'))
        Word.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(take()))));
      auto It = keywordTable().find(Word);
      if (It != keywordTable().end()) {
        T.Kind = It->second;
      } else {
        T.Kind = PTok::Ident;
        T.Text = std::move(Word);
      }
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      lexNumber(T);
      return;
    }
    switch (C) {
    case '$': { // hex integer literal
      take();
      if (!std::isxdigit(static_cast<unsigned char>(peek()))) {
        Diags.error(T.Loc, "expected hex digits after '$'");
        T.Kind = PTok::IntLit;
        return;
      }
      uint64_t V = 0;
      while (std::isxdigit(static_cast<unsigned char>(peek()))) {
        char D = take();
        V = V * 16 + (std::isdigit(static_cast<unsigned char>(D))
                          ? D - '0'
                          : std::tolower(static_cast<unsigned char>(D)) -
                                'a' + 10);
      }
      T.Kind = PTok::IntLit;
      T.IntValue = static_cast<int64_t>(static_cast<int32_t>(V));
      return;
    }
    case '\'':
      lexCharOrString(T);
      return;
    case '+': take(); T.Kind = PTok::Plus; return;
    case '-': take(); T.Kind = PTok::Minus; return;
    case '*': take(); T.Kind = PTok::Star; return;
    case '/': take(); T.Kind = PTok::Slash; return;
    case '=': take(); T.Kind = PTok::Eq; return;
    case ',': take(); T.Kind = PTok::Comma; return;
    case ';': take(); T.Kind = PTok::Semi; return;
    case '(': take(); T.Kind = PTok::LParen; return;
    case ')': take(); T.Kind = PTok::RParen; return;
    case '[': take(); T.Kind = PTok::LBracket; return;
    case ']': take(); T.Kind = PTok::RBracket; return;
    case '<':
      take();
      if (peek() == '=') { take(); T.Kind = PTok::Le; return; }
      if (peek() == '>') { take(); T.Kind = PTok::Ne; return; }
      T.Kind = PTok::Lt;
      return;
    case '>':
      take();
      if (peek() == '=') { take(); T.Kind = PTok::Ge; return; }
      T.Kind = PTok::Gt;
      return;
    case ':':
      take();
      if (peek() == '=') { take(); T.Kind = PTok::Assign; return; }
      T.Kind = PTok::Colon;
      return;
    case '.':
      take();
      if (peek() == '.') { take(); T.Kind = PTok::DotDot; return; }
      T.Kind = PTok::Dot;
      return;
    default:
      Diags.error(T.Loc, std::string("unexpected character '") + C + "'");
      take();
      T.Kind = PTok::End;
      return;
    }
  }

  void lexNumber(PToken &T) {
    std::string Digits;
    while (std::isdigit(static_cast<unsigned char>(peek())))
      Digits.push_back(take());
    // A '.' starts a real literal only when followed by a digit ("0..9"
    // range syntax must keep its DotDot token).
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      Digits.push_back(take());
      while (std::isdigit(static_cast<unsigned char>(peek())))
        Digits.push_back(take());
      if (peek() == 'e' || peek() == 'E') {
        Digits.push_back(take());
        if (peek() == '+' || peek() == '-')
          Digits.push_back(take());
        while (std::isdigit(static_cast<unsigned char>(peek())))
          Digits.push_back(take());
      }
      T.Kind = PTok::RealLit;
      T.RealValue = std::strtod(Digits.c_str(), nullptr);
      return;
    }
    T.Kind = PTok::IntLit;
    T.IntValue = std::strtoll(Digits.c_str(), nullptr, 10);
  }

  void lexCharOrString(PToken &T) {
    take(); // opening quote
    std::string Bytes;
    for (;;) {
      if (atEnd() || peek() == '\n') {
        Diags.error(T.Loc, "unterminated character or string literal");
        break;
      }
      char C = take();
      if (C == '\'') {
        if (peek() == '\'') { // '' escapes a single quote
          take();
          Bytes.push_back('\'');
          continue;
        }
        break;
      }
      Bytes.push_back(C);
    }
    if (Bytes.size() == 1) {
      T.Kind = PTok::CharLit;
      T.IntValue = static_cast<unsigned char>(Bytes[0]);
    } else {
      T.Kind = PTok::StrLit;
    }
    T.StrValue = std::move(Bytes);
  }

  const std::string &Src;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  unsigned Line = 1, Col = 1;
};

} // namespace

std::vector<PToken> omni::pascal::tokenize(const std::string &Source,
                                           DiagnosticEngine &Diags) {
  return Lexer(Source, Diags).run();
}

const char *omni::pascal::getTokenName(PTok Kind) {
  switch (Kind) {
  case PTok::End: return "end of input";
  case PTok::Ident: return "identifier";
  case PTok::IntLit: return "integer literal";
  case PTok::RealLit: return "real literal";
  case PTok::CharLit: return "character literal";
  case PTok::StrLit: return "string literal";
  case PTok::KwProgram: return "'program'";
  case PTok::KwConst: return "'const'";
  case PTok::KwVar: return "'var'";
  case PTok::KwProcedure: return "'procedure'";
  case PTok::KwFunction: return "'function'";
  case PTok::KwBegin: return "'begin'";
  case PTok::KwEnd: return "'end'";
  case PTok::KwIf: return "'if'";
  case PTok::KwThen: return "'then'";
  case PTok::KwElse: return "'else'";
  case PTok::KwWhile: return "'while'";
  case PTok::KwDo: return "'do'";
  case PTok::KwFor: return "'for'";
  case PTok::KwTo: return "'to'";
  case PTok::KwDownto: return "'downto'";
  case PTok::KwRepeat: return "'repeat'";
  case PTok::KwUntil: return "'until'";
  case PTok::KwDiv: return "'div'";
  case PTok::KwMod: return "'mod'";
  case PTok::KwAnd: return "'and'";
  case PTok::KwOr: return "'or'";
  case PTok::KwXor: return "'xor'";
  case PTok::KwNot: return "'not'";
  case PTok::KwShl: return "'shl'";
  case PTok::KwShr: return "'shr'";
  case PTok::KwArray: return "'array'";
  case PTok::KwOf: return "'of'";
  case PTok::KwInteger: return "'integer'";
  case PTok::KwReal: return "'real'";
  case PTok::KwBoolean: return "'boolean'";
  case PTok::KwChar: return "'char'";
  case PTok::KwTrue: return "'true'";
  case PTok::KwFalse: return "'false'";
  case PTok::Plus: return "'+'";
  case PTok::Minus: return "'-'";
  case PTok::Star: return "'*'";
  case PTok::Slash: return "'/'";
  case PTok::Eq: return "'='";
  case PTok::Ne: return "'<>'";
  case PTok::Lt: return "'<'";
  case PTok::Le: return "'<='";
  case PTok::Gt: return "'>'";
  case PTok::Ge: return "'>='";
  case PTok::LParen: return "'('";
  case PTok::RParen: return "')'";
  case PTok::LBracket: return "'['";
  case PTok::RBracket: return "']'";
  case PTok::Comma: return "','";
  case PTok::Semi: return "';'";
  case PTok::Colon: return "':'";
  case PTok::Assign: return "':='";
  case PTok::DotDot: return "'..'";
  case PTok::Dot: return "'.'";
  }
  return "token";
}
