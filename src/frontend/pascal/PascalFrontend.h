//===- frontend/pascal/PascalFrontend.h - Pascal entry points ---*- C++ -*-===//
///
/// \file
/// Public entry points of the Pascal frontend: parse + type check
/// (`parse`, declared in PascalAST.h), AST -> IR lowering (`lowerToIR`),
/// and the one-call convenience used by the driver (`compileToIR`). The
/// produced `ir::Program` is indistinguishable from MiniC output and
/// flows through the shared optimizer, codegen, verifier, and target
/// translators unchanged (see FRONTENDS.md).
///
//===----------------------------------------------------------------------===//
#ifndef OMNI_FRONTEND_PASCAL_PASCALFRONTEND_H
#define OMNI_FRONTEND_PASCAL_PASCALFRONTEND_H

#include "ir/IR.h"
#include "support/Diagnostics.h"

#include <string>

namespace omni {
namespace pascal {

struct Module;

/// Lowers a parsed, type-checked module onto the shared mid-level IR.
bool lowerToIR(const Module &M, ir::Program &Out, DiagnosticEngine &Diags);

/// Parses, checks, and lowers \p Source in one step. Returns false with
/// diagnostics in \p Diags on any error.
bool compileToIR(const std::string &Source, ir::Program &Out,
                 DiagnosticEngine &Diags);

} // namespace pascal
} // namespace omni

#endif // OMNI_FRONTEND_PASCAL_PASCALFRONTEND_H
