//===- frontend/pascal/PascalAST.h - Pascal AST and types -------*- C++ -*-===//
///
/// \file
/// Typed AST for the Pascal frontend. The shapes deliberately mirror the
/// MiniC frontend's: a one-pass parser interleaves type checking with
/// parsing and produces a fully-typed tree that the lowering walks to emit
/// the shared machine-independent IR. Nothing downstream of `lowerToIR`
/// knows which language the module came from — that is the point.
///
/// Supported subset (enough to port the SPEC-miniature workloads):
/// programs, procedures and functions with value and `var` parameters,
/// `integer`/`boolean`/`char`/`real`, multi-dimensional arrays with
/// arbitrary constant index ranges, `if`/`while`/`for`/`repeat`,
/// `write`/`writeln` over the standard host imports.
///
//===----------------------------------------------------------------------===//
#ifndef OMNI_FRONTEND_PASCAL_PASCALAST_H
#define OMNI_FRONTEND_PASCAL_PASCALAST_H

#include "frontend/pascal/PascalLexer.h"

#include <deque>
#include <memory>
#include <string>
#include <vector>

namespace omni {
namespace pascal {

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

enum class PTypeKind : uint8_t { Integer, Real, Boolean, Char, Array };

/// A Pascal type; interned in the module's TypeArena so types compare by
/// pointer.
struct PType {
  PTypeKind K = PTypeKind::Integer;
  const PType *Elem = nullptr; ///< Array element type
  int32_t Lo = 0, Hi = 0;      ///< Array index range (inclusive)

  bool isArray() const { return K == PTypeKind::Array; }
  bool isScalar() const { return K != PTypeKind::Array; }
  uint32_t count() const {
    return static_cast<uint32_t>(static_cast<int64_t>(Hi) - Lo + 1);
  }
};

/// Byte size of \p T in the module's data segment (OmniVM layout:
/// integer 4, real 8, boolean/char 1).
uint32_t typeSize(const PType *T);
/// Alignment of \p T.
uint32_t typeAlign(const PType *T);
/// Printable type name for diagnostics.
std::string typeName(const PType *T);

/// Owns and interns the types of one module.
class TypeArena {
public:
  const PType *integerTy() const { return &IntegerT; }
  const PType *realTy() const { return &RealT; }
  const PType *booleanTy() const { return &BooleanT; }
  const PType *charTy() const { return &CharT; }
  const PType *getArray(const PType *Elem, int32_t Lo, int32_t Hi) {
    for (const PType &T : Arrays)
      if (T.Elem == Elem && T.Lo == Lo && T.Hi == Hi)
        return &T;
    Arrays.push_back(PType{PTypeKind::Array, Elem, Lo, Hi});
    return &Arrays.back();
  }

private:
  PType IntegerT{PTypeKind::Integer, nullptr, 0, 0};
  PType RealT{PTypeKind::Real, nullptr, 0, 0};
  PType BooleanT{PTypeKind::Boolean, nullptr, 0, 0};
  PType CharT{PTypeKind::Char, nullptr, 0, 0};
  std::deque<PType> Arrays; ///< deque: interned pointers stay stable
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

struct VarDecl {
  std::string Name; ///< lowercased
  const PType *Ty = nullptr;
  SourceLoc Loc;
  bool IsGlobal = false;
  bool IsParam = false;
  bool VarParam = false;      ///< pass-by-reference parameter
  /// Scalar local/value-param whose address escapes (bound to a `var`
  /// parameter): lowered to a frame slot instead of a register.
  bool AddressTaken = false;
};

struct Stmt;
struct Expr;

struct FuncDecl {
  std::string Name; ///< lowercased
  SourceLoc Loc;
  std::vector<VarDecl *> Params;        ///< owned by Locals
  const PType *RetTy = nullptr;         ///< null => procedure
  std::vector<std::unique_ptr<VarDecl>> Locals; ///< params then locals
  std::unique_ptr<Stmt> Body;

  bool isFunction() const { return RetTy != nullptr; }
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind : uint8_t {
  IntLit,
  RealLit,
  CharLit,
  BoolLit,
  StrLit,   ///< only as a write/writeln argument
  VarRef,
  Index,    ///< L[R], one dimension per node
  Binary,   ///< Op over L, R
  Unary,    ///< Op over L (Minus, KwNot)
  Call,     ///< user function call
  Ord,      ///< ord(L): char/boolean -> integer
  Chr,      ///< chr(L): integer -> char
  Trunc,    ///< trunc(L): real -> integer (toward zero)
  IntToReal ///< implicit widening inserted by the checker
};

struct Expr {
  ExprKind K;
  const PType *Ty = nullptr;
  SourceLoc Loc;
  PTok Op = PTok::End;
  std::unique_ptr<Expr> L, R;
  std::vector<std::unique_ptr<Expr>> Args;
  VarDecl *Var = nullptr;
  FuncDecl *Fn = nullptr;
  int64_t IntVal = 0;
  double RealVal = 0;
  std::string Str;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind : uint8_t {
  Compound,
  Assign,   ///< LHS := E (LHS may be the enclosing function's name)
  AssignResult, ///< function result := E
  If,       ///< if E then S1 [else S2]
  While,    ///< while E do S1
  Repeat,   ///< repeat Body until E
  For,      ///< for Var := E to/downto E2 do S1
  Call,     ///< procedure call
  Write,    ///< write/writeln(Args...); Newline from writeln
  Empty
};

struct Stmt {
  StmtKind K;
  SourceLoc Loc;
  std::vector<std::unique_ptr<Stmt>> Body; ///< Compound / Repeat
  std::unique_ptr<Expr> LHS;               ///< Assign target / For variable
  std::unique_ptr<Expr> E;                 ///< condition / RHS / For lo
  std::unique_ptr<Expr> E2;                ///< For hi
  std::unique_ptr<Stmt> S1, S2;
  std::vector<std::unique_ptr<Expr>> Args; ///< Call / Write arguments
  FuncDecl *Callee = nullptr;              ///< Call
  bool Down = false;                       ///< For: downto
  bool Newline = false;                    ///< Write: writeln
};

//===----------------------------------------------------------------------===//
// Module
//===----------------------------------------------------------------------===//

struct Module {
  std::string Name;
  TypeArena Types;
  std::vector<std::unique_ptr<VarDecl>> Globals;
  std::vector<std::unique_ptr<FuncDecl>> Funcs;
  std::unique_ptr<Stmt> MainBody;
  bool UsesPrintInt = false;
  bool UsesPrintChar = false;
};

/// Parses and type-checks \p Source. Returns null when \p Diags received
/// errors.
std::unique_ptr<Module> parse(const std::string &Source,
                              DiagnosticEngine &Diags);

} // namespace pascal
} // namespace omni

#endif // OMNI_FRONTEND_PASCAL_PASCALAST_H
