//===- frontend/pascal/PascalParser.cpp - Pascal parser + checker ---------===//
///
/// Recursive-descent parser for the Pascal subset, with type checking
/// interleaved (same one-pass shape as the MiniC frontend). Classic Pascal
/// precedence: relational < additive (+ - or xor) < multiplicative
/// (* / div mod and shl shr) < unary. `/` always produces `real`;
/// `div`/`mod` are the integer forms. Constants fold at parse time, so
/// array bounds and `const` declarations accept expressions over earlier
/// constants.
///
//===----------------------------------------------------------------------===//

#include "frontend/pascal/PascalAST.h"

#include <cassert>
#include <map>

using namespace omni;
using namespace omni::pascal;

uint32_t omni::pascal::typeSize(const PType *T) {
  switch (T->K) {
  case PTypeKind::Integer:
    return 4;
  case PTypeKind::Real:
    return 8;
  case PTypeKind::Boolean:
  case PTypeKind::Char:
    return 1;
  case PTypeKind::Array:
    return T->count() * typeSize(T->Elem);
  }
  return 4;
}

uint32_t omni::pascal::typeAlign(const PType *T) {
  switch (T->K) {
  case PTypeKind::Integer:
    return 4;
  case PTypeKind::Real:
    return 8;
  case PTypeKind::Boolean:
  case PTypeKind::Char:
    return 1;
  case PTypeKind::Array:
    return typeAlign(T->Elem);
  }
  return 4;
}

std::string omni::pascal::typeName(const PType *T) {
  switch (T->K) {
  case PTypeKind::Integer:
    return "integer";
  case PTypeKind::Real:
    return "real";
  case PTypeKind::Boolean:
    return "boolean";
  case PTypeKind::Char:
    return "char";
  case PTypeKind::Array:
    return "array[" + std::to_string(T->Lo) + ".." + std::to_string(T->Hi) +
           "] of " + typeName(T->Elem);
  }
  return "?";
}

namespace {

/// A folded compile-time constant.
struct ConstVal {
  bool IsReal = false;
  int64_t I = 0;
  double R = 0;
};

class Parser {
public:
  Parser(std::vector<PToken> Toks, DiagnosticEngine &Diags)
      : Toks(std::move(Toks)), Diags(Diags) {}

  std::unique_ptr<Module> run() {
    M = std::make_unique<Module>();
    parseProgram();
    if (Diags.hasErrors())
      return nullptr;
    return std::move(M);
  }

private:
  //===--------------------------------------------------------------------===//
  // Token helpers
  //===--------------------------------------------------------------------===//

  const PToken &peek(size_t Ahead = 0) const {
    size_t I = Idx + Ahead;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }
  bool at(PTok K) const { return peek().Kind == K; }
  const PToken &take() {
    const PToken &T = Toks[Idx];
    if (Idx + 1 < Toks.size())
      ++Idx;
    return T;
  }
  bool accept(PTok K) {
    if (!at(K))
      return false;
    take();
    return true;
  }
  bool expect(PTok K, const char *Where) {
    if (accept(K))
      return true;
    Diags.error(peek().Loc, std::string("expected ") + getTokenName(K) +
                                " " + Where + ", found " +
                                getTokenName(peek().Kind));
    return false;
  }
  SourceLoc loc() const { return peek().Loc; }

  //===--------------------------------------------------------------------===//
  // Scope lookups
  //===--------------------------------------------------------------------===//

  VarDecl *lookupVar(const std::string &Name) {
    auto It = LocalVars.find(Name);
    if (It != LocalVars.end())
      return It->second;
    auto G = GlobalVars.find(Name);
    return G != GlobalVars.end() ? G->second : nullptr;
  }
  const ConstVal *lookupConst(const std::string &Name) {
    auto It = LocalConsts.find(Name);
    if (It != LocalConsts.end())
      return &It->second;
    auto G = GlobalConsts.find(Name);
    return G != GlobalConsts.end() ? &G->second : nullptr;
  }
  bool nameInUse(const std::string &Name) {
    if (CurFn) {
      return LocalVars.count(Name) || LocalConsts.count(Name) ||
             Name == CurFn->Name;
    }
    return GlobalVars.count(Name) || GlobalConsts.count(Name) ||
           Funcs.count(Name) || Name == M->Name || Name == "main";
  }

  //===--------------------------------------------------------------------===//
  // Expression construction helpers
  //===--------------------------------------------------------------------===//

  std::unique_ptr<Expr> makeExpr(ExprKind K, const PType *Ty, SourceLoc L) {
    auto E = std::make_unique<Expr>();
    E->K = K;
    E->Ty = Ty;
    E->Loc = L;
    return E;
  }
  std::unique_ptr<Expr> makeIntLit(int64_t V, SourceLoc L) {
    auto E = makeExpr(ExprKind::IntLit, M->Types.integerTy(), L);
    E->IntVal = V;
    return E;
  }

  bool isNumeric(const PType *T) {
    return T->K == PTypeKind::Integer || T->K == PTypeKind::Real;
  }

  /// Inserts the implicit integer->real widening when needed.
  std::unique_ptr<Expr> coerceToReal(std::unique_ptr<Expr> E) {
    if (E->Ty->K == PTypeKind::Real)
      return E;
    if (E->K == ExprKind::IntLit) { // fold literals directly
      auto R = makeExpr(ExprKind::RealLit, M->Types.realTy(), E->Loc);
      R->RealVal = static_cast<double>(E->IntVal);
      return R;
    }
    auto W = makeExpr(ExprKind::IntToReal, M->Types.realTy(), E->Loc);
    W->L = std::move(E);
    return W;
  }

  /// Recovery value for expression-level type errors: a zero of integer
  /// type, so checking can continue without cascading.
  std::unique_ptr<Expr> errorExpr(SourceLoc L) { return makeIntLit(0, L); }

  //===--------------------------------------------------------------------===//
  // Constant folding
  //===--------------------------------------------------------------------===//

  bool evalConst(const Expr *E, ConstVal &Out) {
    switch (E->K) {
    case ExprKind::IntLit:
    case ExprKind::CharLit:
    case ExprKind::BoolLit:
      Out = ConstVal{false, E->IntVal, 0};
      return true;
    case ExprKind::RealLit:
      Out = ConstVal{true, 0, E->RealVal};
      return true;
    case ExprKind::IntToReal: {
      ConstVal V;
      if (!evalConst(E->L.get(), V))
        return false;
      Out = ConstVal{true, 0, static_cast<double>(V.I)};
      return true;
    }
    case ExprKind::Unary: {
      ConstVal V;
      if (!evalConst(E->L.get(), V))
        return false;
      if (E->Op == PTok::Minus) {
        Out = V.IsReal ? ConstVal{true, 0, -V.R}
                       : ConstVal{false, -V.I, 0};
        return true;
      }
      if (E->Op == PTok::KwNot && !V.IsReal) {
        Out = ConstVal{false, ~V.I, 0};
        return true;
      }
      return false;
    }
    case ExprKind::Binary: {
      ConstVal A, B;
      if (!evalConst(E->L.get(), A) || !evalConst(E->R.get(), B))
        return false;
      if (A.IsReal || B.IsReal) {
        double X = A.IsReal ? A.R : static_cast<double>(A.I);
        double Y = B.IsReal ? B.R : static_cast<double>(B.I);
        switch (E->Op) {
        case PTok::Plus: Out = ConstVal{true, 0, X + Y}; return true;
        case PTok::Minus: Out = ConstVal{true, 0, X - Y}; return true;
        case PTok::Star: Out = ConstVal{true, 0, X * Y}; return true;
        case PTok::Slash:
          if (Y == 0)
            return false;
          Out = ConstVal{true, 0, X / Y};
          return true;
        default:
          return false;
        }
      }
      int64_t X = A.I, Y = B.I;
      switch (E->Op) {
      case PTok::Plus: Out = ConstVal{false, X + Y, 0}; return true;
      case PTok::Minus: Out = ConstVal{false, X - Y, 0}; return true;
      case PTok::Star: Out = ConstVal{false, X * Y, 0}; return true;
      case PTok::KwDiv:
        if (Y == 0)
          return false;
        Out = ConstVal{false, X / Y, 0};
        return true;
      case PTok::KwMod:
        if (Y == 0)
          return false;
        Out = ConstVal{false, X % Y, 0};
        return true;
      case PTok::KwAnd: Out = ConstVal{false, X & Y, 0}; return true;
      case PTok::KwOr: Out = ConstVal{false, X | Y, 0}; return true;
      case PTok::KwXor: Out = ConstVal{false, X ^ Y, 0}; return true;
      case PTok::KwShl:
        Out = ConstVal{false,
                       static_cast<int32_t>(static_cast<uint32_t>(X)
                                            << (Y & 31)),
                       0};
        return true;
      case PTok::KwShr:
        Out = ConstVal{false,
                       static_cast<int64_t>(static_cast<uint32_t>(X) >>
                                            (Y & 31)),
                       0};
        return true;
      default:
        return false;
      }
    }
    default:
      return false;
    }
  }

  /// Parses an expression that must fold to an integer constant.
  bool parseConstInt(int64_t &Out, const char *Where) {
    SourceLoc L = loc();
    auto E = parseExpression();
    ConstVal V;
    if (!evalConst(E.get(), V) || V.IsReal) {
      Diags.error(L, std::string("constant integer expression required ") +
                         Where);
      Out = 0;
      return false;
    }
    Out = V.I;
    return true;
  }

  //===--------------------------------------------------------------------===//
  // Types
  //===--------------------------------------------------------------------===//

  const PType *parseType() {
    SourceLoc L = loc();
    switch (peek().Kind) {
    case PTok::KwInteger:
      take();
      return M->Types.integerTy();
    case PTok::KwReal:
      take();
      return M->Types.realTy();
    case PTok::KwBoolean:
      take();
      return M->Types.booleanTy();
    case PTok::KwChar:
      take();
      return M->Types.charTy();
    case PTok::KwArray: {
      take();
      expect(PTok::LBracket, "after 'array'");
      std::vector<std::pair<int64_t, int64_t>> Ranges;
      do {
        int64_t Lo = 0, Hi = 0;
        parseConstInt(Lo, "as array lower bound");
        expect(PTok::DotDot, "in array index range");
        parseConstInt(Hi, "as array upper bound");
        if (Hi < Lo)
          Diags.error(L, "array upper bound below lower bound");
        Ranges.push_back({Lo, Hi});
      } while (accept(PTok::Comma));
      expect(PTok::RBracket, "after array index ranges");
      expect(PTok::KwOf, "in array type");
      const PType *T = parseType();
      // array[a..b, c..d] of T  ==  array[a..b] of array[c..d] of T
      for (auto It = Ranges.rbegin(); It != Ranges.rend(); ++It)
        T = M->Types.getArray(T, static_cast<int32_t>(It->first),
                              static_cast<int32_t>(It->second));
      return T;
    }
    default:
      Diags.error(L, std::string("expected a type, found ") +
                         getTokenName(peek().Kind));
      return M->Types.integerTy();
    }
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  static bool isRelOp(PTok K) {
    return K == PTok::Eq || K == PTok::Ne || K == PTok::Lt ||
           K == PTok::Le || K == PTok::Gt || K == PTok::Ge;
  }

  std::unique_ptr<Expr> parseExpression() {
    auto L = parseSimple();
    if (!isRelOp(peek().Kind))
      return L;
    PTok Op = take().Kind;
    SourceLoc OpLoc = L->Loc;
    auto R = parseSimple();
    if (isNumeric(L->Ty) && isNumeric(R->Ty)) {
      if (L->Ty->K == PTypeKind::Real || R->Ty->K == PTypeKind::Real) {
        L = coerceToReal(std::move(L));
        R = coerceToReal(std::move(R));
      }
    } else if (L->Ty != R->Ty || !L->Ty->isScalar()) {
      Diags.error(OpLoc, "cannot compare " + typeName(L->Ty) + " with " +
                             typeName(R->Ty));
      return errorExpr(OpLoc);
    } else if (L->Ty->K == PTypeKind::Boolean && Op != PTok::Eq &&
               Op != PTok::Ne) {
      Diags.error(OpLoc, "booleans support only '=' and '<>'");
    }
    auto E = makeExpr(ExprKind::Binary, M->Types.booleanTy(), OpLoc);
    E->Op = Op;
    E->L = std::move(L);
    E->R = std::move(R);
    return E;
  }

  std::unique_ptr<Expr> parseSimple() {
    SourceLoc SignLoc = loc();
    bool Negate = false;
    if (accept(PTok::Minus))
      Negate = true;
    else
      accept(PTok::Plus);
    auto L = parseTerm();
    if (Negate)
      L = applyUnaryMinus(std::move(L), SignLoc);
    while (at(PTok::Plus) || at(PTok::Minus) || at(PTok::KwOr) ||
           at(PTok::KwXor)) {
      PTok Op = take().Kind;
      SourceLoc OpLoc = L->Loc;
      auto R = parseTerm();
      L = buildArith(Op, std::move(L), std::move(R), OpLoc);
    }
    return L;
  }

  std::unique_ptr<Expr> parseTerm() {
    auto L = parseFactor();
    while (at(PTok::Star) || at(PTok::Slash) || at(PTok::KwDiv) ||
           at(PTok::KwMod) || at(PTok::KwAnd) || at(PTok::KwShl) ||
           at(PTok::KwShr)) {
      PTok Op = take().Kind;
      SourceLoc OpLoc = L->Loc;
      auto R = parseFactor();
      L = buildArith(Op, std::move(L), std::move(R), OpLoc);
    }
    return L;
  }

  std::unique_ptr<Expr> applyUnaryMinus(std::unique_ptr<Expr> V,
                                        SourceLoc L) {
    if (!isNumeric(V->Ty)) {
      Diags.error(L, "unary '-' requires integer or real, got " +
                         typeName(V->Ty));
      return errorExpr(L);
    }
    if (V->K == ExprKind::IntLit) { // fold negative literals
      V->IntVal = -V->IntVal;
      return V;
    }
    if (V->K == ExprKind::RealLit) {
      V->RealVal = -V->RealVal;
      return V;
    }
    auto E = makeExpr(ExprKind::Unary, V->Ty, L);
    E->Op = PTok::Minus;
    E->L = std::move(V);
    return E;
  }

  std::unique_ptr<Expr> buildArith(PTok Op, std::unique_ptr<Expr> L,
                                   std::unique_ptr<Expr> R, SourceLoc OpLoc) {
    switch (Op) {
    case PTok::Plus:
    case PTok::Minus:
    case PTok::Star: {
      if (!isNumeric(L->Ty) || !isNumeric(R->Ty)) {
        Diags.error(OpLoc, std::string("operator ") + getTokenName(Op) +
                               " requires numeric operands, got " +
                               typeName(L->Ty) + " and " + typeName(R->Ty));
        return errorExpr(OpLoc);
      }
      const PType *Ty = M->Types.integerTy();
      if (L->Ty->K == PTypeKind::Real || R->Ty->K == PTypeKind::Real) {
        L = coerceToReal(std::move(L));
        R = coerceToReal(std::move(R));
        Ty = M->Types.realTy();
      }
      auto E = makeExpr(ExprKind::Binary, Ty, OpLoc);
      E->Op = Op;
      E->L = std::move(L);
      E->R = std::move(R);
      return E;
    }
    case PTok::Slash: { // '/' is always real division in Pascal
      if (!isNumeric(L->Ty) || !isNumeric(R->Ty)) {
        Diags.error(OpLoc, "operator '/' requires numeric operands, got " +
                               typeName(L->Ty) + " and " + typeName(R->Ty));
        return errorExpr(OpLoc);
      }
      L = coerceToReal(std::move(L));
      R = coerceToReal(std::move(R));
      auto E = makeExpr(ExprKind::Binary, M->Types.realTy(), OpLoc);
      E->Op = Op;
      E->L = std::move(L);
      E->R = std::move(R);
      return E;
    }
    case PTok::KwDiv:
    case PTok::KwMod:
    case PTok::KwShl:
    case PTok::KwShr: {
      if (L->Ty->K != PTypeKind::Integer ||
          R->Ty->K != PTypeKind::Integer) {
        Diags.error(OpLoc, std::string("operator ") + getTokenName(Op) +
                               " requires integer operands, got " +
                               typeName(L->Ty) + " and " + typeName(R->Ty));
        return errorExpr(OpLoc);
      }
      auto E = makeExpr(ExprKind::Binary, M->Types.integerTy(), OpLoc);
      E->Op = Op;
      E->L = std::move(L);
      E->R = std::move(R);
      return E;
    }
    case PTok::KwAnd:
    case PTok::KwOr:
    case PTok::KwXor: {
      const PType *Ty = nullptr;
      if (L->Ty->K == PTypeKind::Integer && R->Ty->K == PTypeKind::Integer)
        Ty = M->Types.integerTy(); // bitwise form
      else if (L->Ty->K == PTypeKind::Boolean &&
               R->Ty->K == PTypeKind::Boolean)
        Ty = M->Types.booleanTy(); // logical form (fully evaluated)
      if (!Ty) {
        Diags.error(OpLoc, std::string("operator ") + getTokenName(Op) +
                               " requires two integers or two booleans, "
                               "got " +
                               typeName(L->Ty) + " and " + typeName(R->Ty));
        return errorExpr(OpLoc);
      }
      auto E = makeExpr(ExprKind::Binary, Ty, OpLoc);
      E->Op = Op;
      E->L = std::move(L);
      E->R = std::move(R);
      return E;
    }
    default:
      assert(false && "not an arithmetic operator");
      return errorExpr(OpLoc);
    }
  }

  std::unique_ptr<Expr> parseFactor() {
    SourceLoc L = loc();
    switch (peek().Kind) {
    case PTok::KwNot: {
      take();
      auto V = parseFactor();
      if (V->Ty->K != PTypeKind::Boolean &&
          V->Ty->K != PTypeKind::Integer) {
        Diags.error(L, "'not' requires boolean or integer, got " +
                           typeName(V->Ty));
        return errorExpr(L);
      }
      auto E = makeExpr(ExprKind::Unary, V->Ty, L);
      E->Op = PTok::KwNot;
      E->L = std::move(V);
      return E;
    }
    case PTok::Minus: // accepted in factor position for convenience
      take();
      return applyUnaryMinus(parseFactor(), L);
    case PTok::IntLit:
      return makeIntLit(take().IntValue, L);
    case PTok::RealLit: {
      auto E = makeExpr(ExprKind::RealLit, M->Types.realTy(), L);
      E->RealVal = take().RealValue;
      return E;
    }
    case PTok::CharLit: {
      auto E = makeExpr(ExprKind::CharLit, M->Types.charTy(), L);
      E->IntVal = take().IntValue;
      return E;
    }
    case PTok::KwTrue:
    case PTok::KwFalse: {
      auto E = makeExpr(ExprKind::BoolLit, M->Types.booleanTy(), L);
      E->IntVal = take().Kind == PTok::KwTrue ? 1 : 0;
      return E;
    }
    case PTok::LParen: {
      take();
      auto E = parseExpression();
      expect(PTok::RParen, "to close parenthesized expression");
      return E;
    }
    case PTok::Ident:
      return parseIdentExpr();
    default:
      Diags.error(L, std::string("expected an expression, found ") +
                         getTokenName(peek().Kind));
      take();
      return errorExpr(L);
    }
  }

  std::unique_ptr<Expr> parseIdentExpr() {
    SourceLoc L = loc();
    std::string Name = take().Text;

    // Builtins.
    if (Name == "ord" || Name == "chr" || Name == "trunc")
      return parseBuiltin(Name, L);

    // Constants fold to literals at resolution.
    if (const ConstVal *C = lookupConst(Name)) {
      if (C->IsReal) {
        auto E = makeExpr(ExprKind::RealLit, M->Types.realTy(), L);
        E->RealVal = C->R;
        return E;
      }
      return makeIntLit(C->I, L);
    }

    // Variables (and array indexing).
    if (VarDecl *V = lookupVar(Name))
      return parseLValueSuffix(V, L);

    // The enclosing function's own name in expression position is a
    // recursive call.
    if (CurFn && CurFn->isFunction() && Name == CurFn->Name)
      return parseCallExpr(CurFn, L);

    if (auto It = Funcs.find(Name); It != Funcs.end())
      return parseCallExpr(It->second, L);

    Diags.error(L, "unknown identifier '" + Name + "'");
    return errorExpr(L);
  }

  std::unique_ptr<Expr> parseBuiltin(const std::string &Name, SourceLoc L) {
    expect(PTok::LParen, ("after '" + Name + "'").c_str());
    auto Arg = parseExpression();
    expect(PTok::RParen, ("to close '" + Name + "' call").c_str());
    if (Name == "ord") {
      if (Arg->Ty->K != PTypeKind::Char &&
          Arg->Ty->K != PTypeKind::Boolean &&
          Arg->Ty->K != PTypeKind::Integer) {
        Diags.error(L, "ord() requires char, boolean, or integer");
        return errorExpr(L);
      }
      if (Arg->Ty->K == PTypeKind::Integer)
        return Arg; // ord over integer is the identity
      auto E = makeExpr(ExprKind::Ord, M->Types.integerTy(), L);
      E->L = std::move(Arg);
      return E;
    }
    if (Name == "chr") {
      if (Arg->Ty->K != PTypeKind::Integer) {
        Diags.error(L, "chr() requires an integer");
        return errorExpr(L);
      }
      auto E = makeExpr(ExprKind::Chr, M->Types.charTy(), L);
      E->L = std::move(Arg);
      return E;
    }
    // trunc
    if (Arg->Ty->K != PTypeKind::Real) {
      Diags.error(L, "trunc() requires a real");
      return errorExpr(L);
    }
    auto E = makeExpr(ExprKind::Trunc, M->Types.integerTy(), L);
    E->L = std::move(Arg);
    return E;
  }

  /// Parses `[i, j][k]...` suffixes after a variable reference.
  std::unique_ptr<Expr> parseLValueSuffix(VarDecl *V, SourceLoc L) {
    auto E = makeExpr(ExprKind::VarRef, V->Ty, L);
    E->Var = V;
    std::unique_ptr<Expr> Cur = std::move(E);
    while (at(PTok::LBracket)) {
      take();
      do {
        if (!Cur->Ty->isArray()) {
          Diags.error(loc(), "cannot index non-array " + typeName(Cur->Ty));
          return errorExpr(L);
        }
        auto I = parseExpression();
        if (I->Ty->K != PTypeKind::Integer) {
          Diags.error(I->Loc, "array index must be an integer, got " +
                                  typeName(I->Ty));
          I = errorExpr(I->Loc);
        }
        auto Ix = makeExpr(ExprKind::Index, Cur->Ty->Elem, I->Loc);
        Ix->L = std::move(Cur);
        Ix->R = std::move(I);
        Cur = std::move(Ix);
      } while (accept(PTok::Comma)); // a[i, j] == a[i][j]
      expect(PTok::RBracket, "to close array index");
    }
    return Cur;
  }

  /// Checks an actual argument list against \p F and builds the call node.
  std::unique_ptr<Expr> parseCallExpr(FuncDecl *F, SourceLoc L) {
    if (!F->isFunction())
      Diags.error(L, "procedure '" + F->Name +
                         "' returns nothing and cannot appear in an "
                         "expression");
    auto E = makeExpr(ExprKind::Call,
                      F->RetTy ? F->RetTy : M->Types.integerTy(), L);
    E->Fn = F;
    parseCallArgs(F, E->Args, L);
    return E;
  }

  void parseCallArgs(FuncDecl *F,
                     std::vector<std::unique_ptr<Expr>> &Args, SourceLoc L) {
    if (accept(PTok::LParen)) {
      if (!at(PTok::RParen)) {
        do {
          Args.push_back(parseExpression());
        } while (accept(PTok::Comma));
      }
      expect(PTok::RParen, "to close argument list");
    }
    if (Args.size() != F->Params.size()) {
      Diags.error(L, "'" + F->Name + "' expects " +
                         std::to_string(F->Params.size()) +
                         " argument(s), got " + std::to_string(Args.size()));
      return;
    }
    for (size_t I = 0; I < Args.size(); ++I) {
      VarDecl *P = F->Params[I];
      std::unique_ptr<Expr> &A = Args[I];
      if (P->VarParam) {
        // var parameters demand an lvalue of the exact same type.
        if (A->K != ExprKind::VarRef && A->K != ExprKind::Index) {
          Diags.error(A->Loc, "argument for var parameter '" + P->Name +
                                  "' must be a variable");
          continue;
        }
        if (A->Ty != P->Ty) {
          Diags.error(A->Loc, "var parameter '" + P->Name + "' needs " +
                                  typeName(P->Ty) + ", got " +
                                  typeName(A->Ty));
          continue;
        }
        // A scalar variable whose address escapes must live in memory.
        if (A->K == ExprKind::VarRef && A->Ty->isScalar())
          A->Var->AddressTaken = true;
      } else {
        if (A->Ty->isArray()) {
          Diags.error(A->Loc,
                      "arrays must be passed to 'var' parameters");
          continue;
        }
        if (P->Ty->K == PTypeKind::Real && A->Ty->K == PTypeKind::Integer)
          A = coerceToReal(std::move(A));
        else if (A->Ty != P->Ty)
          Diags.error(A->Loc, "parameter '" + P->Name + "' needs " +
                                  typeName(P->Ty) + ", got " +
                                  typeName(A->Ty));
      }
    }
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  std::unique_ptr<Stmt> makeStmt(StmtKind K, SourceLoc L) {
    auto S = std::make_unique<Stmt>();
    S->K = K;
    S->Loc = L;
    return S;
  }

  std::unique_ptr<Expr> parseCondition(const char *Where) {
    auto E = parseExpression();
    if (E->Ty->K != PTypeKind::Boolean) {
      Diags.error(E->Loc, std::string(Where) +
                              " condition must be boolean, got " +
                              typeName(E->Ty));
    }
    return E;
  }

  /// begin ... end (the KwBegin is already consumed by the caller).
  std::unique_ptr<Stmt> parseCompound(SourceLoc L) {
    auto C = makeStmt(StmtKind::Compound, L);
    for (;;) {
      if (at(PTok::KwEnd) || at(PTok::End))
        break;
      if (accept(PTok::Semi)) // empty statement
        continue;
      C->Body.push_back(parseStatement());
      if (!at(PTok::Semi))
        break;
    }
    expect(PTok::KwEnd, "to close compound statement");
    return C;
  }

  std::unique_ptr<Stmt> parseStatement() {
    SourceLoc L = loc();
    switch (peek().Kind) {
    case PTok::KwBegin:
      take();
      return parseCompound(L);
    case PTok::KwIf: {
      take();
      auto S = makeStmt(StmtKind::If, L);
      S->E = parseCondition("'if'");
      expect(PTok::KwThen, "after 'if' condition");
      S->S1 = parseStatement();
      if (accept(PTok::KwElse))
        S->S2 = parseStatement();
      return S;
    }
    case PTok::KwWhile: {
      take();
      auto S = makeStmt(StmtKind::While, L);
      S->E = parseCondition("'while'");
      expect(PTok::KwDo, "after 'while' condition");
      S->S1 = parseStatement();
      return S;
    }
    case PTok::KwRepeat: {
      take();
      auto S = makeStmt(StmtKind::Repeat, L);
      for (;;) {
        if (at(PTok::KwUntil) || at(PTok::End))
          break;
        if (accept(PTok::Semi))
          continue;
        S->Body.push_back(parseStatement());
        if (!at(PTok::Semi))
          break;
      }
      expect(PTok::KwUntil, "to close 'repeat'");
      S->E = parseCondition("'until'");
      return S;
    }
    case PTok::KwFor:
      return parseFor();
    case PTok::Ident:
      return parseIdentStmt();
    default:
      Diags.error(L, std::string("expected a statement, found ") +
                         getTokenName(peek().Kind));
      take();
      return makeStmt(StmtKind::Empty, L);
    }
  }

  std::unique_ptr<Stmt> parseFor() {
    SourceLoc L = loc();
    take(); // for
    auto S = makeStmt(StmtKind::For, L);
    if (!at(PTok::Ident)) {
      expect(PTok::Ident, "as 'for' loop variable");
      return makeStmt(StmtKind::Empty, L);
    }
    SourceLoc VarLoc = loc();
    std::string Name = take().Text;
    VarDecl *V = lookupVar(Name);
    if (!V) {
      Diags.error(VarLoc, "unknown loop variable '" + Name + "'");
    } else if (V->Ty->K != PTypeKind::Integer) {
      Diags.error(VarLoc, "'for' loop variable must be an integer");
      V = nullptr;
    }
    if (V) {
      auto Ref = makeExpr(ExprKind::VarRef, V->Ty, VarLoc);
      Ref->Var = V;
      S->LHS = std::move(Ref);
    }
    expect(PTok::Assign, "after 'for' loop variable");
    S->E = parseExpression();
    if (S->E->Ty->K != PTypeKind::Integer)
      Diags.error(S->E->Loc, "'for' bounds must be integers");
    if (at(PTok::KwDownto)) {
      take();
      S->Down = true;
    } else {
      expect(PTok::KwTo, "in 'for' statement");
    }
    S->E2 = parseExpression();
    if (S->E2->Ty->K != PTypeKind::Integer)
      Diags.error(S->E2->Loc, "'for' bounds must be integers");
    expect(PTok::KwDo, "after 'for' bounds");
    S->S1 = parseStatement();
    if (!S->LHS)
      return makeStmt(StmtKind::Empty, L);
    return S;
  }

  std::unique_ptr<Stmt> parseIdentStmt() {
    SourceLoc L = loc();
    std::string Name = take().Text;

    // write / writeln via host imports.
    if (Name == "write" || Name == "writeln")
      return parseWrite(Name == "writeln", L);

    // Assignment to the enclosing function's name sets its result.
    if (CurFn && CurFn->isFunction() && Name == CurFn->Name &&
        at(PTok::Assign)) {
      take();
      auto S = makeStmt(StmtKind::AssignResult, L);
      S->E = parseExpression();
      S->E = checkAssignable(CurFn->RetTy, std::move(S->E),
                             "function result");
      return S;
    }

    if (VarDecl *V = lookupVar(Name)) {
      auto LHS = parseLValueSuffix(V, L);
      if (!LHS->Ty->isScalar()) {
        Diags.error(L, "cannot assign whole arrays");
        LHS = errorExpr(L);
      }
      expect(PTok::Assign, "in assignment");
      auto S = makeStmt(StmtKind::Assign, L);
      auto RHS = parseExpression();
      S->E = checkAssignable(LHS->Ty, std::move(RHS), "assignment");
      S->LHS = std::move(LHS);
      return S;
    }

    // Procedure (or self-recursive) call statement.
    FuncDecl *F = nullptr;
    if (CurFn && Name == CurFn->Name)
      F = CurFn;
    else if (auto It = Funcs.find(Name); It != Funcs.end())
      F = It->second;
    if (F) {
      auto S = makeStmt(StmtKind::Call, L);
      S->Callee = F;
      parseCallArgs(F, S->Args, L);
      return S;
    }

    Diags.error(L, "unknown identifier '" + Name + "'");
    return makeStmt(StmtKind::Empty, L);
  }

  std::unique_ptr<Expr> checkAssignable(const PType *Target,
                                        std::unique_ptr<Expr> V,
                                        const char *What) {
    if (Target->K == PTypeKind::Real && V->Ty->K == PTypeKind::Integer)
      return coerceToReal(std::move(V));
    if (Target != V->Ty) {
      Diags.error(V->Loc, std::string(What) + " needs " + typeName(Target) +
                              ", got " + typeName(V->Ty));
      return errorExpr(V->Loc);
    }
    return V;
  }

  std::unique_ptr<Stmt> parseWrite(bool Newline, SourceLoc L) {
    auto S = makeStmt(StmtKind::Write, L);
    S->Newline = Newline;
    if (accept(PTok::LParen)) {
      if (!at(PTok::RParen)) {
        do {
          if (at(PTok::StrLit)) {
            const PToken &T = take();
            auto E = makeExpr(ExprKind::StrLit, M->Types.charTy(), T.Loc);
            E->Str = T.StrValue;
            S->Args.push_back(std::move(E));
            M->UsesPrintChar = true;
            continue;
          }
          auto E = parseExpression();
          switch (E->Ty->K) {
          case PTypeKind::Integer:
            M->UsesPrintInt = true;
            break;
          case PTypeKind::Char:
            M->UsesPrintChar = true;
            break;
          default:
            Diags.error(E->Loc,
                        "write() accepts integer, char, and string "
                        "arguments; got " +
                            typeName(E->Ty) +
                            " (print reals via trunc())");
          }
          S->Args.push_back(std::move(E));
        } while (accept(PTok::Comma));
      }
      expect(PTok::RParen, "to close write argument list");
    }
    if (Newline)
      M->UsesPrintChar = true;
    else if (S->Args.empty())
      Diags.error(L, "write() needs at least one argument");
    return S;
  }

  //===--------------------------------------------------------------------===//
  // Declarations
  //===--------------------------------------------------------------------===//

  void parseConstBlock() {
    while (at(PTok::Ident)) {
      SourceLoc L = loc();
      std::string Name = take().Text;
      expect(PTok::Eq, "in constant declaration");
      SourceLoc VL = loc();
      auto E = parseExpression();
      ConstVal V;
      if (!evalConst(E.get(), V)) {
        Diags.error(VL, "initializer of '" + Name +
                            "' is not a compile-time constant");
        V = ConstVal{};
      }
      if (nameInUse(Name))
        Diags.error(L, "redefinition of '" + Name + "'");
      else if (CurFn)
        LocalConsts[Name] = V;
      else
        GlobalConsts[Name] = V;
      expect(PTok::Semi, "after constant declaration");
    }
  }

  void parseVarBlock() {
    while (at(PTok::Ident)) {
      std::vector<std::pair<std::string, SourceLoc>> Names;
      do {
        if (!at(PTok::Ident)) {
          expect(PTok::Ident, "in variable declaration");
          break;
        }
        SourceLoc L = loc();
        Names.push_back({take().Text, L});
      } while (accept(PTok::Comma));
      expect(PTok::Colon, "in variable declaration");
      const PType *Ty = parseType();
      expect(PTok::Semi, "after variable declaration");
      for (auto &[Name, L] : Names) {
        if (nameInUse(Name)) {
          Diags.error(L, "redefinition of '" + Name + "'");
          continue;
        }
        auto V = std::make_unique<VarDecl>();
        V->Name = Name;
        V->Ty = Ty;
        V->Loc = L;
        V->IsGlobal = CurFn == nullptr;
        if (CurFn) {
          LocalVars[Name] = V.get();
          CurFn->Locals.push_back(std::move(V));
        } else {
          GlobalVars[Name] = V.get();
          M->Globals.push_back(std::move(V));
        }
      }
    }
  }

  void parseRoutine() {
    bool IsFunc = at(PTok::KwFunction);
    take(); // procedure / function
    SourceLoc L = loc();
    std::string Name;
    if (at(PTok::Ident))
      Name = take().Text;
    else
      expect(PTok::Ident, "as routine name");
    if (Name == "main")
      Diags.error(L, "'main' is reserved for the program body");
    else if (Name == "print_int" || Name == "print_char")
      Diags.error(L, "'" + Name + "' is a reserved host import name");
    else if (nameInUse(Name) || Name == "write" || Name == "writeln" ||
             Name == "ord" || Name == "chr" || Name == "trunc")
      Diags.error(L, "redefinition of '" + Name + "'");

    auto F = std::make_unique<FuncDecl>();
    F->Name = Name;
    F->Loc = L;
    CurFn = F.get();
    LocalVars.clear();
    LocalConsts.clear();

    if (accept(PTok::LParen)) {
      if (!at(PTok::RParen)) {
        do {
          bool IsVar = accept(PTok::KwVar);
          std::vector<std::pair<std::string, SourceLoc>> Names;
          do {
            if (!at(PTok::Ident)) {
              expect(PTok::Ident, "as parameter name");
              break;
            }
            SourceLoc PL = loc();
            Names.push_back({take().Text, PL});
          } while (accept(PTok::Comma));
          expect(PTok::Colon, "in parameter declaration");
          const PType *Ty = parseType();
          if (Ty->isArray() && !IsVar)
            Diags.error(L, "array parameters must be 'var'");
          for (auto &[PName, PL] : Names) {
            if (LocalVars.count(PName)) {
              Diags.error(PL, "duplicate parameter '" + PName + "'");
              continue;
            }
            auto P = std::make_unique<VarDecl>();
            P->Name = PName;
            P->Ty = Ty;
            P->Loc = PL;
            P->IsParam = true;
            P->VarParam = IsVar;
            LocalVars[PName] = P.get();
            F->Params.push_back(P.get());
            F->Locals.push_back(std::move(P));
          }
        } while (accept(PTok::Semi));
      }
      expect(PTok::RParen, "to close parameter list");
    }
    if (IsFunc) {
      expect(PTok::Colon, "before function result type");
      F->RetTy = parseType();
      if (F->RetTy->isArray()) {
        Diags.error(L, "functions cannot return arrays");
        F->RetTy = M->Types.integerTy();
      }
    }
    expect(PTok::Semi, "after routine header");

    // Register before the body so the routine can recurse.
    if (!Name.empty() && !Funcs.count(Name))
      Funcs[Name] = F.get();

    while (at(PTok::KwConst) || at(PTok::KwVar)) {
      if (accept(PTok::KwConst))
        parseConstBlock();
      else if (accept(PTok::KwVar))
        parseVarBlock();
    }
    SourceLoc BodyLoc = loc();
    expect(PTok::KwBegin, "to start routine body");
    F->Body = parseCompound(BodyLoc);
    expect(PTok::Semi, "after routine body");

    CurFn = nullptr;
    LocalVars.clear();
    LocalConsts.clear();
    M->Funcs.push_back(std::move(F));
  }

  void parseProgram() {
    expect(PTok::KwProgram, "at start of source");
    if (at(PTok::Ident))
      M->Name = take().Text;
    else
      expect(PTok::Ident, "as program name");
    if (accept(PTok::LParen)) { // program name(input, output) is classic
      while (at(PTok::Ident)) {
        take();
        if (!accept(PTok::Comma))
          break;
      }
      expect(PTok::RParen, "to close program parameter list");
    }
    expect(PTok::Semi, "after program header");

    for (;;) {
      if (accept(PTok::KwConst)) {
        parseConstBlock();
        continue;
      }
      if (accept(PTok::KwVar)) {
        parseVarBlock();
        continue;
      }
      if (at(PTok::KwProcedure) || at(PTok::KwFunction)) {
        parseRoutine();
        continue;
      }
      break;
    }
    SourceLoc L = loc();
    if (!expect(PTok::KwBegin, "to start program body"))
      return;
    M->MainBody = parseCompound(L);
    expect(PTok::Dot, "after final 'end'");
  }

  //===--------------------------------------------------------------------===//

  std::vector<PToken> Toks;
  DiagnosticEngine &Diags;
  size_t Idx = 0;
  std::unique_ptr<Module> M;
  FuncDecl *CurFn = nullptr;
  std::map<std::string, VarDecl *> GlobalVars, LocalVars;
  std::map<std::string, ConstVal> GlobalConsts, LocalConsts;
  std::map<std::string, FuncDecl *> Funcs;
};

} // namespace

std::unique_ptr<Module> omni::pascal::parse(const std::string &Source,
                                            DiagnosticEngine &Diags) {
  std::vector<PToken> Toks = tokenize(Source, Diags);
  if (Diags.hasErrors())
    return nullptr;
  return Parser(std::move(Toks), Diags).run();
}
