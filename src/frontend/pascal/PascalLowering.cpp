//===- frontend/pascal/PascalLowering.cpp - Pascal AST -> IR --------------===//
///
/// Lowers the typed Pascal AST onto the same mid-level IR the MiniC
/// frontend targets. Everything downstream — the optimizer, OmniVM
/// codegen, verifier, sficheck, and the four target translators — is
/// shared; this file is the entire language-specific half of the backend
/// contract described in FRONTENDS.md.
///
/// Conventions (mirroring the MiniC lowering so modules from either
/// frontend are indistinguishable to the pipeline):
///  - scalar locals and value parameters live in virtual registers;
///    arrays and address-taken scalars live in frame slots; globals are
///    zero-initialized bss symbols
///  - `var` parameters are passed as I32 addresses and accessed indirectly
///  - the program body becomes the exported `main` (returning 0)
///  - `write`/`writeln` lower to the `print_int`/`print_char` host imports
///
//===----------------------------------------------------------------------===//

#include "frontend/pascal/PascalFrontend.h"

#include "frontend/pascal/PascalAST.h"
#include "ir/IRBuilder.h"

#include <cassert>
#include <map>

using namespace omni;
using namespace omni::pascal;
using ir::IRBuilder;
using ir::MemWidth;
using ir::Op;
using ir::Value;

namespace {

ir::Type irTypeOf(const PType *T) {
  return T->K == PTypeKind::Real ? ir::Type::F64 : ir::Type::I32;
}

MemWidth memWidthOf(const PType *T) {
  switch (T->K) {
  case PTypeKind::Real:
    return MemWidth::F64;
  case PTypeKind::Boolean:
  case PTypeKind::Char:
    return MemWidth::W8;
  default:
    return MemWidth::W32;
  }
}

/// char and boolean load as zero-extended bytes; integers are signed words.
bool loadSigned(const PType *T) {
  return T->K == PTypeKind::Integer || T->K == PTypeKind::Real;
}

/// An lvalue address: exactly one of (register base), (global symbol),
/// (frame slot) plus a constant byte offset. Same shape as the MiniC
/// lowering's.
struct Addr {
  Value Base;
  std::string Sym;
  int Slot = -1;
  int64_t Off = 0;

  bool isFrame() const { return Slot >= 0; }
  bool isGlobal() const { return !Sym.empty(); }
};

class LoweringImpl {
public:
  LoweringImpl(const Module &M, ir::Program &Out, DiagnosticEngine &Diags)
      : M(M), Out(Out), Diags(Diags) {}

  bool run() {
    size_t ErrorsBefore = Diags.errorCount();

    // Host imports used by write/writeln.
    if (M.UsesPrintInt)
      Out.Imports.push_back("print_int");
    if (M.UsesPrintChar)
      Out.Imports.push_back("print_char");

    // Globals: Pascal variables have no initializers, so everything is
    // zero-initialized bss.
    for (const auto &G : M.Globals) {
      ir::GlobalVar GV;
      GV.Name = G->Name;
      GV.Size = typeSize(G->Ty);
      GV.Align = typeAlign(G->Ty);
      if (GV.Size == 0)
        GV.Size = 1;
      Out.Globals.push_back(std::move(GV));
    }

    for (const auto &Fn : M.Funcs)
      lowerRoutine(Fn.get());
    lowerMain();

    return Diags.errorCount() == ErrorsBefore;
  }

private:
  //===--------------------------------------------------------------------===//
  // Functions
  //===--------------------------------------------------------------------===//

  void beginFunction(const std::string &Name, const PType *RetTy) {
    Out.Functions.push_back(ir::Function());
    F = &Out.Functions.back();
    F->Name = Name;
    F->HasRet = RetTy != nullptr;
    F->RetTy = RetTy ? irTypeOf(RetTy) : ir::Type::I32;
    B = std::make_unique<IRBuilder>(*F);
    VarRegs.clear();
    VarSlots.clear();
    Result = Value();
    unsigned Entry = B->createBlock("entry");
    B->setInsertPoint(Entry);
  }

  /// Terminates every block that still falls off the end: functions
  /// return their result register, procedures return void, `main`
  /// returns 0.
  void sealFunction(bool MainZero) {
    for (unsigned BI = 0; BI < F->Blocks.size(); ++BI) {
      if (F->Blocks[BI].hasTerminator())
        continue;
      B->setInsertPoint(BI);
      if (!F->HasRet) {
        B->retVoid();
      } else if (MainZero || !Result.isValid()) {
        B->ret(B->constInt(0));
      } else {
        B->ret(Result);
      }
    }
  }

  void lowerRoutine(const FuncDecl *Fn) {
    beginFunction(Fn->Name, Fn->RetTy);

    // Parameters arrive as values; var parameters are addresses.
    for (VarDecl *P : Fn->Params) {
      ir::Type Ty = P->VarParam ? ir::Type::I32 : irTypeOf(P->Ty);
      Value In = F->newValue(Ty);
      F->ParamTypes.push_back(Ty);
      F->ParamValues.push_back(In);
      if (!P->VarParam && P->AddressTaken) {
        unsigned SlotId = newSlot(P);
        B->storeFrame(memWidthOf(P->Ty), SlotId, 0, In);
      } else {
        Value Var = F->newValue(Ty);
        B->copyTo(Var, In);
        VarRegs[P] = Var;
      }
    }

    // Locals. (Params are also in Fn->Locals; they already have homes.)
    for (const auto &L : Fn->Locals) {
      if (L->IsParam)
        continue;
      if (L->Ty->isArray() || L->AddressTaken) {
        unsigned SlotId = newSlot(L.get());
        zeroFill(SlotId, L->Ty);
      } else {
        Value Var = F->newValue(irTypeOf(L->Ty));
        VarRegs[L.get()] = Var;
        // Pascal locals are formally uninitialized; define the register
        // anyway so the IR has no undefined reads.
        B->copyTo(Var, zeroOf(L->Ty));
      }
    }

    // The function result register, initialized to zero.
    if (Fn->isFunction()) {
      Result = F->newValue(irTypeOf(Fn->RetTy));
      B->copyTo(Result, zeroOf(Fn->RetTy));
    }

    lowerStmt(Fn->Body.get());
    sealFunction(/*MainZero=*/false);
  }

  void lowerMain() {
    beginFunction("main", M.Types.integerTy());
    lowerStmt(M.MainBody.get());
    sealFunction(/*MainZero=*/true);
  }

  unsigned newSlot(const VarDecl *V) {
    ir::FrameSlot Slot;
    Slot.Size = typeSize(V->Ty);
    Slot.Align = typeAlign(V->Ty);
    Slot.Name = V->Name;
    F->Slots.push_back(Slot);
    unsigned SlotId = static_cast<unsigned>(F->Slots.size() - 1);
    VarSlots[V] = SlotId;
    return SlotId;
  }

  Value zeroOf(const PType *T) {
    return T->K == PTypeKind::Real ? B->constFp(0.0, ir::Type::F64)
                                   : B->constInt(0);
  }

  /// Pascal gives no guarantee about fresh local arrays, but the workload
  /// ports (like their C originals) rely on explicit initialization only;
  /// zero-filling keeps behaviour deterministic across targets without
  /// reading stale frame memory.
  void zeroFill(unsigned SlotId, const PType *Ty) {
    uint32_t Size = typeSize(Ty);
    Value Zero = B->constInt(0);
    uint32_t Off = 0;
    for (; Off + 4 <= Size; Off += 4)
      B->storeFrame(MemWidth::W32, SlotId, Off, Zero);
    for (; Off < Size; ++Off)
      B->storeFrame(MemWidth::W8, SlotId, Off, Zero);
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  void lowerStmt(const Stmt *S) {
    if (!S || B->blockTerminated())
      return;
    switch (S->K) {
    case StmtKind::Compound:
      for (const auto &Child : S->Body) {
        if (B->blockTerminated())
          break;
        lowerStmt(Child.get());
      }
      return;
    case StmtKind::Empty:
      return;
    case StmtKind::Assign: {
      Value V = genExpr(S->E.get());
      storeLValue(S->LHS.get(), V);
      return;
    }
    case StmtKind::AssignResult: {
      Value V = genExpr(S->E.get());
      B->copyTo(Result, V);
      return;
    }
    case StmtKind::If: {
      unsigned Then = B->createBlock("then");
      unsigned Else = S->S2 ? B->createBlock("else") : 0;
      unsigned Join = B->createBlock("endif");
      if (!S->S2)
        Else = Join;
      genCond(S->E.get(), Then, Else);
      B->setInsertPoint(Then);
      lowerStmt(S->S1.get());
      if (!B->blockTerminated())
        B->jmp(Join);
      if (S->S2) {
        B->setInsertPoint(Else);
        lowerStmt(S->S2.get());
        if (!B->blockTerminated())
          B->jmp(Join);
      }
      B->setInsertPoint(Join);
      return;
    }
    case StmtKind::While: {
      unsigned Header = B->createBlock("while.header");
      unsigned Body = B->createBlock("while.body");
      unsigned Exit = B->createBlock("while.end");
      B->jmp(Header);
      B->setInsertPoint(Header);
      genCond(S->E.get(), Body, Exit);
      B->setInsertPoint(Body);
      lowerStmt(S->S1.get());
      if (!B->blockTerminated())
        B->jmp(Header);
      B->setInsertPoint(Exit);
      return;
    }
    case StmtKind::Repeat: {
      unsigned Body = B->createBlock("repeat.body");
      unsigned Exit = B->createBlock("repeat.end");
      B->jmp(Body);
      B->setInsertPoint(Body);
      for (const auto &Child : S->Body) {
        if (B->blockTerminated())
          break;
        lowerStmt(Child.get());
      }
      // repeat runs its body first, then exits when the condition holds.
      if (!B->blockTerminated())
        genCond(S->E.get(), Exit, Body);
      B->setInsertPoint(Exit);
      return;
    }
    case StmtKind::For:
      lowerFor(S);
      return;
    case StmtKind::Call: {
      std::vector<Value> Args = genCallArgs(S->Callee, S->Args);
      B->call(S->Callee->Name, /*IsImport=*/false, std::move(Args),
              S->Callee->isFunction(),
              S->Callee->isFunction() ? irTypeOf(S->Callee->RetTy)
                                      : ir::Type::I32);
      return;
    }
    case StmtKind::Write:
      lowerWrite(S);
      return;
    }
  }

  void lowerFor(const Stmt *S) {
    const VarDecl *V = S->LHS->Var;
    Value Lo = genExpr(S->E.get());
    writeVar(V, Lo);
    // The final bound is evaluated exactly once, before the loop runs.
    Value Hi = B->copy(genExpr(S->E2.get()));

    unsigned Header = B->createBlock("for.header");
    unsigned Body = B->createBlock("for.body");
    unsigned Exit = B->createBlock("for.end");
    B->jmp(Header);
    B->setInsertPoint(Header);
    Value Cur = readVar(V);
    B->br(S->Down ? ir::Cond::Ge : ir::Cond::Le, Cur, Hi, Body, Exit);
    B->setInsertPoint(Body);
    lowerStmt(S->S1.get());
    if (!B->blockTerminated()) {
      Value Next = B->binaryImm(S->Down ? Op::Sub : Op::Add, readVar(V), 1);
      writeVar(V, Next);
      B->jmp(Header);
    }
    B->setInsertPoint(Exit);
  }

  void lowerWrite(const Stmt *S) {
    for (const auto &A : S->Args) {
      if (A->K == ExprKind::StrLit) {
        for (unsigned char C : A->Str)
          printChar(B->constInt(C));
        continue;
      }
      Value V = genExpr(A.get());
      if (A->Ty->K == PTypeKind::Char)
        printChar(V);
      else
        B->call("print_int", /*IsImport=*/true, {V}, /*HasRet=*/false,
                ir::Type::I32);
    }
    if (S->Newline)
      printChar(B->constInt('\n'));
  }

  void printChar(Value V) {
    B->call("print_char", /*IsImport=*/true, {V}, /*HasRet=*/false,
            ir::Type::I32);
  }

  //===--------------------------------------------------------------------===//
  // Variable access
  //===--------------------------------------------------------------------===//

  /// Address of a variable that lives in memory (global, frame slot, or
  /// behind a var-parameter pointer).
  Addr varAddr(const VarDecl *V) {
    Addr A;
    if (V->VarParam) {
      A.Base = VarRegs.at(V); // the incoming address
      return A;
    }
    if (V->IsGlobal) {
      A.Sym = V->Name;
      return A;
    }
    auto It = VarSlots.find(V);
    assert(It != VarSlots.end() && "register variable has no address");
    A.Slot = static_cast<int>(It->second);
    return A;
  }

  bool inRegister(const VarDecl *V) const {
    return !V->VarParam && VarRegs.count(V);
  }

  Value readVar(const VarDecl *V) {
    if (inRegister(V))
      return VarRegs.at(V);
    return genLoad(varAddr(V), V->Ty);
  }

  void writeVar(const VarDecl *V, Value Val) {
    if (inRegister(V)) {
      B->copyTo(VarRegs.at(V), Val);
      return;
    }
    genStore(varAddr(V), V->Ty, Val);
  }

  Value materializeAddr(const Addr &A) {
    if (A.isFrame())
      return B->frameAddr(static_cast<unsigned>(A.Slot), A.Off);
    if (A.isGlobal())
      return B->addrOf(A.Sym, A.Off);
    if (A.Off != 0)
      return B->binaryImm(Op::Add, A.Base, A.Off);
    return A.Base;
  }

  Value genLoad(const Addr &A, const PType *Ty) {
    ir::Type RegTy = irTypeOf(Ty);
    MemWidth W = memWidthOf(Ty);
    bool Signed = loadSigned(Ty);
    if (A.isFrame())
      return B->loadFrame(RegTy, W, Signed, static_cast<unsigned>(A.Slot),
                          A.Off);
    if (A.isGlobal())
      return B->loadGlobal(RegTy, W, Signed, A.Sym, A.Off);
    return B->load(RegTy, W, Signed, A.Base, A.Off);
  }

  void genStore(const Addr &A, const PType *Ty, Value V) {
    MemWidth W = memWidthOf(Ty);
    if (A.isFrame()) {
      B->storeFrame(W, static_cast<unsigned>(A.Slot), A.Off, V);
      return;
    }
    if (A.isGlobal()) {
      B->storeGlobal(W, A.Sym, A.Off, V);
      return;
    }
    B->store(W, A.Base, A.Off, V);
  }

  /// Address of an lvalue expression (VarRef or Index chain).
  Addr genAddr(const Expr *E) {
    switch (E->K) {
    case ExprKind::VarRef:
      return varAddr(E->Var);
    case ExprKind::Index: {
      Addr A = genAddr(E->L.get());
      const PType *ArrTy = E->L->Ty;
      int64_t Stride = typeSize(E->Ty);
      // Element offset is (index - lo) * stride; the lo adjustment is a
      // compile-time constant folded into the displacement.
      A.Off -= static_cast<int64_t>(ArrTy->Lo) * Stride;
      const Expr *Ix = E->R.get();
      if (Ix->K == ExprKind::IntLit) {
        A.Off += Ix->IntVal * Stride;
        return A;
      }
      Value Idx = genExpr(Ix);
      Value Scaled =
          Stride == 1 ? Idx : B->binaryImm(Op::Mul, Idx, Stride);
      int64_t Off = A.Off;
      A.Off = 0;
      Value BasePtr = materializeAddr(A);
      Addr R;
      R.Base = B->binary(Op::Add, BasePtr, Scaled);
      R.Off = Off;
      return R;
    }
    default:
      Diags.error(E->Loc, "expression is not an lvalue");
      Addr A;
      A.Base = B->constInt(0);
      return A;
    }
  }

  void storeLValue(const Expr *E, Value V) {
    if (E->K == ExprKind::VarRef && inRegister(E->Var)) {
      B->copyTo(VarRegs.at(E->Var), V);
      return;
    }
    genStore(genAddr(E), E->Ty, V);
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  ir::Cond condFor(PTok Op) {
    switch (Op) {
    case PTok::Eq:
      return ir::Cond::Eq;
    case PTok::Ne:
      return ir::Cond::Ne;
    case PTok::Lt:
      return ir::Cond::Lt;
    case PTok::Le:
      return ir::Cond::Le;
    case PTok::Gt:
      return ir::Cond::Gt;
    case PTok::Ge:
      return ir::Cond::Ge;
    default:
      assert(false && "not a comparison");
      return ir::Cond::Eq;
    }
  }

  static bool isRelOp(PTok K) {
    return K == PTok::Eq || K == PTok::Ne || K == PTok::Lt ||
           K == PTok::Le || K == PTok::Gt || K == PTok::Ge;
  }

  /// Branches to \p TrueBlk when \p E holds, else \p FalseBlk. Relational
  /// operators branch directly; everything else (including Pascal's
  /// fully-evaluated `and`/`or`) materializes 0/1 first, so both operands
  /// always execute — the documented difference from C's `&&`/`||`.
  void genCond(const Expr *E, int TrueBlk, int FalseBlk) {
    if (E->K == ExprKind::Binary && isRelOp(E->Op)) {
      ir::Cond Cc = condFor(E->Op);
      Value LV = genExpr(E->L.get());
      if (E->L->Ty->K != PTypeKind::Real &&
          E->R->K == ExprKind::IntLit) {
        B->brImm(Cc, LV, E->R->IntVal, TrueBlk, FalseBlk);
        return;
      }
      Value RV = genExpr(E->R.get());
      B->br(Cc, LV, RV, TrueBlk, FalseBlk);
      return;
    }
    if (E->K == ExprKind::Unary && E->Op == PTok::KwNot &&
        E->Ty->K == PTypeKind::Boolean) {
      genCond(E->L.get(), FalseBlk, TrueBlk);
      return;
    }
    if (E->K == ExprKind::BoolLit) {
      B->jmp(E->IntVal ? TrueBlk : FalseBlk);
      return;
    }
    Value V = genExpr(E);
    B->brImm(ir::Cond::Ne, V, 0, TrueBlk, FalseBlk);
  }

  std::vector<Value> genCallArgs(const FuncDecl *Callee,
                                 const std::vector<std::unique_ptr<Expr>> &Args) {
    std::vector<Value> Out;
    for (size_t I = 0; I < Args.size(); ++I) {
      const Expr *A = Args[I].get();
      bool ByRef = I < Callee->Params.size() && Callee->Params[I]->VarParam;
      if (ByRef)
        Out.push_back(materializeAddr(genAddr(A)));
      else
        Out.push_back(genExpr(A));
    }
    return Out;
  }

  Value genExpr(const Expr *E) {
    switch (E->K) {
    case ExprKind::IntLit:
    case ExprKind::CharLit:
    case ExprKind::BoolLit:
      return B->constInt(E->IntVal);
    case ExprKind::RealLit:
      return B->constFp(E->RealVal, ir::Type::F64);
    case ExprKind::StrLit:
      Diags.error(E->Loc, "string literals may only appear in write()");
      return B->constInt(0);
    case ExprKind::VarRef:
      if (E->Ty->isArray())
        return materializeAddr(genAddr(E)); // var-param passing only
      return readVar(E->Var);
    case ExprKind::Index:
      return genLoad(genAddr(E), E->Ty);
    case ExprKind::Ord:
      // chars and booleans are already zero-extended I32 values.
      return genExpr(E->L.get());
    case ExprKind::Chr:
      // chr(x) = x mod 256: keep the register form canonical so unstored
      // char values compare consistently.
      return B->unary(Op::ZeroExt8, genExpr(E->L.get()), ir::Type::I32);
    case ExprKind::Trunc:
      // Truncation toward zero, same as the MiniC (real -> int) cast.
      return B->unary(Op::FpToInt, genExpr(E->L.get()), ir::Type::I32);
    case ExprKind::IntToReal:
      return B->unary(Op::IntToFp, genExpr(E->L.get()), ir::Type::F64);
    case ExprKind::Unary: {
      Value V = genExpr(E->L.get());
      if (E->Op == PTok::Minus)
        return B->unary(E->Ty->K == PTypeKind::Real ? Op::FNeg : Op::Neg,
                        V, irTypeOf(E->Ty));
      assert(E->Op == PTok::KwNot);
      if (E->Ty->K == PTypeKind::Boolean)
        return B->binaryImm(Op::Xor, V, 1); // flips a materialized 0/1
      return B->unary(Op::Not, V, ir::Type::I32);
    }
    case ExprKind::Binary:
      return genBinary(E);
    case ExprKind::Call: {
      std::vector<Value> Args = genCallArgs(E->Fn, E->Args);
      return B->call(E->Fn->Name, /*IsImport=*/false, std::move(Args),
                     /*HasRet=*/true, irTypeOf(E->Ty));
    }
    }
    assert(false && "unhandled expression kind");
    return B->constInt(0);
  }

  Value genBinary(const Expr *E) {
    if (isRelOp(E->Op)) {
      ir::Cond Cc = condFor(E->Op);
      Value LV = genExpr(E->L.get());
      if (E->L->Ty->K != PTypeKind::Real &&
          E->R->K == ExprKind::IntLit)
        return B->cmpImm(Cc, LV, E->R->IntVal);
      Value RV = genExpr(E->R.get());
      return B->cmp(Cc, LV, RV);
    }
    bool IsReal = E->Ty->K == PTypeKind::Real;
    Op K;
    switch (E->Op) {
    case PTok::Plus:
      K = IsReal ? Op::FAdd : Op::Add;
      break;
    case PTok::Minus:
      K = IsReal ? Op::FSub : Op::Sub;
      break;
    case PTok::Star:
      K = IsReal ? Op::FMul : Op::Mul;
      break;
    case PTok::Slash:
      K = Op::FDiv; // '/' is always real division
      break;
    case PTok::KwDiv:
      K = Op::Div; // signed; traps DivideByZero like MiniC '/'
      break;
    case PTok::KwMod:
      K = Op::Rem;
      break;
    case PTok::KwAnd:
      K = Op::And; // boolean operands are materialized 0/1
      break;
    case PTok::KwOr:
      K = Op::Or;
      break;
    case PTok::KwXor:
      K = Op::Xor;
      break;
    case PTok::KwShl:
      K = Op::Shl;
      break;
    case PTok::KwShr:
      K = Op::ShrL; // Pascal shr is logical, unlike C's int >>
      break;
    default:
      assert(false && "unhandled binary operator");
      K = Op::Add;
      break;
    }
    Value LV = genExpr(E->L.get());
    if (!IsReal && E->R->K == ExprKind::IntLit)
      return B->binaryImm(K, LV, E->R->IntVal);
    Value RV = genExpr(E->R.get());
    return B->binary(K, LV, RV);
  }

  //===--------------------------------------------------------------------===//

  const Module &M;
  ir::Program &Out;
  DiagnosticEngine &Diags;

  ir::Function *F = nullptr;
  std::unique_ptr<IRBuilder> B;
  std::map<const VarDecl *, Value> VarRegs;
  std::map<const VarDecl *, unsigned> VarSlots;
  Value Result; ///< the enclosing function's result register
};

} // namespace

bool omni::pascal::lowerToIR(const Module &M, ir::Program &Out,
                             DiagnosticEngine &Diags) {
  return LoweringImpl(M, Out, Diags).run();
}

bool omni::pascal::compileToIR(const std::string &Source, ir::Program &Out,
                               DiagnosticEngine &Diags) {
  std::unique_ptr<Module> M = parse(Source, Diags);
  if (!M)
    return false;
  return lowerToIR(*M, Out, Diags);
}
