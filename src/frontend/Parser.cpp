//===- frontend/Parser.cpp - MiniC parser + semantic analysis -------------===//
///
/// Recursive-descent parser with interleaved type checking, in the style of
/// classic one-pass C compilers. Produces a fully-typed AST; implicit
/// conversions are materialized as Cast nodes.

#include "frontend/AST.h"

#include "support/Format.h"

#include <cassert>
#include <map>
#include <optional>

using namespace omni;
using namespace omni::minic;

namespace {

using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

/// A name in scope: a variable, a function, or an enum constant.
struct ScopeEntry {
  VarDecl *Var = nullptr;
  FuncDecl *Fn = nullptr;
  bool IsEnumConst = false;
  int64_t EnumValue = 0;
};

class Parser {
public:
  Parser(std::vector<Token> Toks, DiagnosticEngine &Diags)
      : Toks(std::move(Toks)), Diags(Diags) {
    TU = std::make_unique<TranslationUnit>();
  }

  std::unique_ptr<TranslationUnit> run();

private:
  // --- token plumbing ----------------------------------------------------
  const Token &cur() const { return Toks[Pos]; }
  const Token &peek(unsigned Ahead = 1) const {
    size_t I = Pos + Ahead;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }
  bool is(Tok K) const { return cur().Kind == K; }
  bool consume(Tok K) {
    if (!is(K))
      return false;
    ++Pos;
    return true;
  }
  Token expect(Tok K, const char *Context) {
    if (is(K)) {
      Token T = cur();
      ++Pos;
      return T;
    }
    error(cur().Loc, formatStr("expected %s %s, got %s", getTokenName(K),
                               Context, getTokenName(cur().Kind)));
    return cur();
  }
  void error(SourceLoc Loc, std::string Msg) {
    Diags.error(Loc, std::move(Msg));
  }

  /// Skips tokens until a likely statement/declaration boundary (error
  /// recovery).
  void synchronize() {
    while (!is(Tok::End)) {
      if (consume(Tok::Semi))
        return;
      if (is(Tok::RBrace) || is(Tok::LBrace))
        return;
      ++Pos;
    }
  }

  // --- scopes -------------------------------------------------------------
  void pushScope() { Scopes.push_back({}); }
  void popScope() { Scopes.pop_back(); }
  ScopeEntry *lookup(const std::string &Name) {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto F = It->find(Name);
      if (F != It->end())
        return &F->second;
    }
    return nullptr;
  }
  void declare(const std::string &Name, ScopeEntry E, SourceLoc Loc) {
    auto &Top = Scopes.back();
    if (Top.count(Name)) {
      // Function redeclaration is handled separately; variables conflict.
      error(Loc, formatStr("redefinition of '%s'", Name.c_str()));
      return;
    }
    Top[Name] = E;
  }

  VarDecl *createVar(std::string Name, CTypeRef Ty, SourceLoc Loc) {
    TU->AllVars.push_back(std::make_unique<VarDecl>());
    VarDecl *V = TU->AllVars.back().get();
    V->Name = std::move(Name);
    V->Ty = Ty;
    V->Loc = Loc;
    return V;
  }

  // --- types --------------------------------------------------------------
  bool startsDeclSpec() const;
  /// Parses declaration specifiers; returns null when malformed.
  CTypeRef parseDeclSpec();
  /// Parses a declarator over \p Base. Fills \p Name (may legitimately be
  /// empty for abstract declarators in casts/sizeof). Params receives
  /// parameter declarations when the declarator is a function.
  CTypeRef parseDeclarator(CTypeRef Base, std::string &Name,
                           std::vector<VarDecl *> *Params);
  CTypeRef parseStructSpec();
  CTypeRef parseEnumSpec();
  /// Parses a type-name (for casts and sizeof).
  CTypeRef parseTypeName();

  // --- declarations -------------------------------------------------------
  void parseTopLevel();
  void parseGlobalVar(CTypeRef Ty, std::string Name, SourceLoc Loc);
  void parseFunction(CTypeRef FnTy, std::string Name,
                     std::vector<VarDecl *> Params, SourceLoc Loc);
  StmtPtr parseLocalDecl();

  // --- statements ----------------------------------------------------------
  StmtPtr parseStmt();
  StmtPtr parseBlock();
  StmtPtr parseIf();
  StmtPtr parseWhile();
  StmtPtr parseDoWhile();
  StmtPtr parseFor();
  StmtPtr parseReturn();
  StmtPtr parseSwitch();

  // --- expressions ----------------------------------------------------------
  ExprPtr parseExpr();       ///< comma expression
  ExprPtr parseAssign();
  ExprPtr parseCond();
  ExprPtr parseBinary(int MinPrec);
  ExprPtr parseUnary();
  ExprPtr parseCastOrUnary();
  ExprPtr parsePostfix(ExprPtr E);
  ExprPtr parsePrimary();

  // --- semantic helpers -----------------------------------------------------
  ExprPtr makeIntLit(int64_t V, SourceLoc Loc, CTypeRef Ty = nullptr);
  /// Inserts a (possibly no-op) conversion of \p E to \p Ty.
  ExprPtr castTo(ExprPtr E, CTypeRef Ty, bool Implicit);
  /// Array-to-pointer and function-to-pointer decay + lvalue load marker.
  ExprPtr decay(ExprPtr E);
  /// Applies integer promotions (char/short -> int).
  ExprPtr promote(ExprPtr E);
  /// Usual arithmetic conversions; returns the common type.
  CTypeRef usualArith(ExprPtr &L, ExprPtr &R);
  /// Checks/converts \p E for assignment to \p Ty; reports at \p Loc.
  ExprPtr convertForAssign(ExprPtr E, CTypeRef Ty, SourceLoc Loc,
                           const char *What);
  /// Requires a scalar condition.
  ExprPtr checkCondition(ExprPtr E);
  /// Compile-time integer evaluation (array sizes, case labels, enum
  /// values, global scalar initializers).
  std::optional<int64_t> constEval(const Expr *E);

  ExprPtr buildBinary(Tok Op, ExprPtr L, ExprPtr R, SourceLoc Loc);
  ExprPtr buildAssign(ExprPtr L, ExprPtr R, SourceLoc Loc);

  std::vector<Token> Toks;
  size_t Pos = 0;
  DiagnosticEngine &Diags;
  std::unique_ptr<TranslationUnit> TU;
  std::vector<std::map<std::string, ScopeEntry>> Scopes;
  std::map<std::string, StructDef *> StructTags;
  FuncDecl *CurFn = nullptr;
  int LoopDepth = 0;
  int SwitchDepth = 0;
};

//===----------------------------------------------------------------------===//
// Types and declarators
//===----------------------------------------------------------------------===//

bool Parser::startsDeclSpec() const {
  switch (cur().Kind) {
  case Tok::KwVoid:
  case Tok::KwChar:
  case Tok::KwShort:
  case Tok::KwInt:
  case Tok::KwUnsigned:
  case Tok::KwSigned:
  case Tok::KwFloat:
  case Tok::KwDouble:
  case Tok::KwStruct:
  case Tok::KwEnum:
  case Tok::KwConst:
  case Tok::KwStatic:
  case Tok::KwExtern:
  case Tok::KwLong:
    return true;
  default:
    return false;
  }
}

CTypeRef Parser::parseDeclSpec() {
  // Storage/qualifier keywords are accepted and ignored.
  while (is(Tok::KwConst) || is(Tok::KwStatic) || is(Tok::KwExtern))
    ++Pos;

  TypeContext &T = TU->Types;
  bool Unsigned = false, Signed = false;
  if (consume(Tok::KwUnsigned))
    Unsigned = true;
  else if (consume(Tok::KwSigned))
    Signed = true;
  (void)Signed;

  CTypeRef Base = nullptr;
  switch (cur().Kind) {
  case Tok::KwVoid:
    ++Pos;
    Base = T.voidTy();
    break;
  case Tok::KwChar:
    ++Pos;
    Base = Unsigned ? T.ucharTy() : T.charTy();
    break;
  case Tok::KwShort:
    ++Pos;
    consume(Tok::KwInt);
    Base = Unsigned ? T.ushortTy() : T.shortTy();
    break;
  case Tok::KwLong:
    ++Pos;
    consume(Tok::KwLong); // "long long" collapses to int too
    consume(Tok::KwInt);
    Base = Unsigned ? T.uintTy() : T.intTy();
    break;
  case Tok::KwInt:
    ++Pos;
    Base = Unsigned ? T.uintTy() : T.intTy();
    break;
  case Tok::KwFloat:
    ++Pos;
    Base = T.floatTy();
    break;
  case Tok::KwDouble:
    ++Pos;
    Base = T.doubleTy();
    break;
  case Tok::KwStruct:
    Base = parseStructSpec();
    break;
  case Tok::KwEnum:
    Base = parseEnumSpec();
    break;
  default:
    if (Unsigned || Signed) {
      Base = Unsigned ? T.uintTy() : T.intTy();
      break;
    }
    error(cur().Loc, formatStr("expected type, got %s",
                               getTokenName(cur().Kind)));
    return nullptr;
  }
  while (is(Tok::KwConst))
    ++Pos;
  return Base;
}

CTypeRef Parser::parseStructSpec() {
  SourceLoc Loc = cur().Loc;
  expect(Tok::KwStruct, "in struct specifier");
  std::string Tag;
  if (is(Tok::Identifier)) {
    Tag = cur().Text;
    ++Pos;
  }
  StructDef *SD = nullptr;
  if (!Tag.empty()) {
    auto It = StructTags.find(Tag);
    if (It != StructTags.end())
      SD = It->second;
  }
  if (!is(Tok::LBrace)) {
    if (Tag.empty()) {
      error(Loc, "anonymous struct requires a definition");
      return TU->Types.intTy();
    }
    if (!SD) {
      SD = TU->Types.createStruct(Tag);
      StructTags[Tag] = SD;
    }
    return TU->Types.getStruct(SD);
  }
  // Definition.
  if (!SD) {
    SD = TU->Types.createStruct(Tag.empty() ? "<anon>" : Tag);
    if (!Tag.empty())
      StructTags[Tag] = SD;
  } else if (SD->Complete) {
    error(Loc, formatStr("redefinition of struct '%s'", Tag.c_str()));
  }
  expect(Tok::LBrace, "in struct definition");
  uint32_t Offset = 0, MaxAlign = 1;
  while (!is(Tok::RBrace) && !is(Tok::End)) {
    CTypeRef Base = parseDeclSpec();
    if (!Base) {
      synchronize();
      continue;
    }
    do {
      std::string Name;
      CTypeRef FieldTy = parseDeclarator(Base, Name, nullptr);
      if (!FieldTy)
        break;
      if (Name.empty()) {
        error(cur().Loc, "struct field requires a name");
        break;
      }
      if (FieldTy->K == TypeKind::Struct && !FieldTy->SD->Complete) {
        error(cur().Loc, "field has incomplete struct type");
        break;
      }
      uint32_t A = typeAlign(FieldTy);
      Offset = (Offset + A - 1) & ~(A - 1);
      SD->Fields.push_back({Name, FieldTy, Offset});
      Offset += typeSize(FieldTy);
      if (A > MaxAlign)
        MaxAlign = A;
    } while (consume(Tok::Comma));
    expect(Tok::Semi, "after struct field");
  }
  expect(Tok::RBrace, "closing struct definition");
  SD->Align = MaxAlign;
  SD->Size = (Offset + MaxAlign - 1) & ~(MaxAlign - 1);
  if (SD->Size == 0)
    SD->Size = MaxAlign; // empty structs get size 1-ish
  SD->Complete = true;
  return TU->Types.getStruct(SD);
}

CTypeRef Parser::parseEnumSpec() {
  expect(Tok::KwEnum, "in enum specifier");
  if (is(Tok::Identifier))
    ++Pos; // enum tags are accepted, not tracked (enum type is int)
  if (consume(Tok::LBrace)) {
    int64_t Next = 0;
    while (!is(Tok::RBrace) && !is(Tok::End)) {
      Token Name = expect(Tok::Identifier, "in enumerator list");
      if (consume(Tok::Assign)) {
        ExprPtr V = parseCond();
        auto CV = V ? constEval(V.get()) : std::nullopt;
        if (!CV)
          error(Name.Loc, "enumerator value is not a constant");
        else
          Next = *CV;
      }
      ScopeEntry E;
      E.IsEnumConst = true;
      E.EnumValue = Next++;
      declare(Name.Text, E, Name.Loc);
      if (!consume(Tok::Comma))
        break;
    }
    expect(Tok::RBrace, "closing enumerator list");
  }
  return TU->Types.intTy();
}

CTypeRef Parser::parseDeclarator(CTypeRef Base, std::string &Name,
                                 std::vector<VarDecl *> *Params) {
  // Pointers bind first.
  while (consume(Tok::Star)) {
    Base = TU->Types.getPointer(Base);
    while (is(Tok::KwConst))
      ++Pos;
  }

  // Direct declarator: name, or parenthesized declarator (function
  // pointers), or abstract.
  CTypeRef InnerBaseSlot = nullptr; ///< marker type for "(...)" declarators
  size_t InnerStart = 0, InnerEnd = 0;
  if (is(Tok::LParen) &&
      (peek().Kind == Tok::Star || peek().Kind == Tok::LParen)) {
    // Remember the inner declarator tokens; parse suffixes first, then
    // re-parse the inner declarator with the full type. (Classic two-pass
    // trick kept simple by token positions.)
    ++Pos;
    InnerStart = Pos;
    int Depth = 1;
    while (Depth > 0 && !is(Tok::End)) {
      if (is(Tok::LParen))
        ++Depth;
      if (is(Tok::RParen))
        --Depth;
      if (Depth > 0)
        ++Pos;
    }
    InnerEnd = Pos;
    expect(Tok::RParen, "closing declarator");
    InnerBaseSlot = Base;
  } else if (is(Tok::Identifier)) {
    Name = cur().Text;
    ++Pos;
  }

  // Suffixes: arrays and function parameter lists.
  std::vector<uint32_t> ArrayDims;
  bool SawUnsizedArray = false;
  CTypeRef FnTy = nullptr;
  if (is(Tok::LParen) && InnerBaseSlot == nullptr && Params != nullptr) {
    // Function declarator (only supported at the outermost level, i.e.
    // actual function declarations — function types elsewhere come from
    // pointer-to-function declarators).
    ++Pos;
    std::vector<CTypeRef> ParamTypes;
    if (is(Tok::KwVoid) && peek().Kind == Tok::RParen)
      Pos += 1; // (void)
    while (!is(Tok::RParen) && !is(Tok::End)) {
      CTypeRef PBase = parseDeclSpec();
      if (!PBase)
        break;
      std::string PName;
      CTypeRef PTy = parseDeclarator(PBase, PName, nullptr);
      if (!PTy)
        break;
      // Array parameters decay to pointers.
      if (PTy->K == TypeKind::Array)
        PTy = TU->Types.getPointer(PTy->Elem);
      if (PTy->K == TypeKind::Func)
        PTy = TU->Types.getPointer(PTy);
      ParamTypes.push_back(PTy);
      VarDecl *P = createVar(PName, PTy, cur().Loc);
      P->IsParam = true;
      Params->push_back(P);
      if (!consume(Tok::Comma))
        break;
    }
    expect(Tok::RParen, "closing parameter list");
    FnTy = TU->Types.getFunc(Base, std::move(ParamTypes));
    return FnTy;
  }
  while (is(Tok::LParen) || is(Tok::LBracket)) {
    if (consume(Tok::LBracket)) {
      if (is(Tok::RBracket)) {
        SawUnsizedArray = true;
        ArrayDims.push_back(0);
      } else {
        ExprPtr SizeE = parseCond();
        auto CV = SizeE ? constEval(SizeE.get()) : std::nullopt;
        if (!CV || *CV < 0) {
          error(cur().Loc, "array size is not a non-negative constant");
          ArrayDims.push_back(1);
        } else {
          ArrayDims.push_back(static_cast<uint32_t>(*CV));
        }
      }
      expect(Tok::RBracket, "closing array size");
    } else {
      // Function type suffix for inner declarators: T (*name)(params).
      ++Pos;
      std::vector<CTypeRef> ParamTypes;
      if (is(Tok::KwVoid) && peek().Kind == Tok::RParen)
        Pos += 1;
      while (!is(Tok::RParen) && !is(Tok::End)) {
        CTypeRef PBase = parseDeclSpec();
        if (!PBase)
          break;
        std::string PName;
        CTypeRef PTy = parseDeclarator(PBase, PName, nullptr);
        if (!PTy)
          break;
        if (PTy->K == TypeKind::Array)
          PTy = TU->Types.getPointer(PTy->Elem);
        if (PTy->K == TypeKind::Func)
          PTy = TU->Types.getPointer(PTy);
        ParamTypes.push_back(PTy);
        if (!consume(Tok::Comma))
          break;
      }
      expect(Tok::RParen, "closing parameter list");
      Base = TU->Types.getFunc(Base, std::move(ParamTypes));
    }
  }
  // Apply array dims right-to-left.
  for (auto It = ArrayDims.rbegin(); It != ArrayDims.rend(); ++It)
    Base = TU->Types.getArray(Base, *It);
  (void)SawUnsizedArray;

  // Re-parse an inner parenthesized declarator, with Base as its base.
  if (InnerBaseSlot != nullptr) {
    size_t Save = Pos;
    Pos = InnerStart;
    CTypeRef Result = parseDeclarator(Base, Name, nullptr);
    // Ensure we consumed exactly the inner tokens.
    if (Pos != InnerEnd)
      error(cur().Loc, "malformed parenthesized declarator");
    Pos = Save;
    return Result;
  }
  return Base;
}

CTypeRef Parser::parseTypeName() {
  CTypeRef Base = parseDeclSpec();
  if (!Base)
    return nullptr;
  std::string Name;
  CTypeRef Ty = parseDeclarator(Base, Name, nullptr);
  if (!Name.empty())
    error(cur().Loc, "type name cannot declare an identifier");
  return Ty;
}

//===----------------------------------------------------------------------===//
// Top level
//===----------------------------------------------------------------------===//

std::unique_ptr<TranslationUnit> Parser::run() {
  pushScope();
  while (!is(Tok::End))
    parseTopLevel();
  popScope();
  if (Diags.hasErrors())
    return nullptr;
  return std::move(TU);
}

void Parser::parseTopLevel() {
  if (consume(Tok::Semi))
    return;
  if (!startsDeclSpec()) {
    error(cur().Loc, formatStr("expected declaration, got %s",
                               getTokenName(cur().Kind)));
    ++Pos;
    synchronize();
    return;
  }
  CTypeRef Base = parseDeclSpec();
  if (!Base) {
    synchronize();
    return;
  }
  // struct definition followed by ';' declares only the tag.
  if (consume(Tok::Semi))
    return;

  while (true) {
    SourceLoc Loc = cur().Loc;
    std::string Name;
    std::vector<VarDecl *> Params;
    CTypeRef Ty = parseDeclarator(Base, Name, &Params);
    if (!Ty) {
      synchronize();
      return;
    }
    if (Name.empty()) {
      error(Loc, "declaration requires a name");
      synchronize();
      return;
    }
    if (Ty->K == TypeKind::Func) {
      parseFunction(Ty, Name, std::move(Params), Loc);
      return; // functions never chain with commas here
    }
    parseGlobalVar(Ty, Name, Loc);
    if (consume(Tok::Comma))
      continue;
    expect(Tok::Semi, "after declaration");
    return;
  }
}

void Parser::parseGlobalVar(CTypeRef Ty, std::string Name, SourceLoc Loc) {
  if (isVoidType(Ty)) {
    error(Loc, "variable has void type");
    return;
  }
  ScopeEntry *Prev = lookup(Name);
  VarDecl *V;
  if (Prev && Prev->Var && Prev->Var->IsGlobal) {
    // Redeclaration (extern then definition); types must match.
    if (!typesEqual(Prev->Var->Ty, Ty) &&
        !(Prev->Var->Ty->K == TypeKind::Array &&
          Ty->K == TypeKind::Array &&
          typesEqual(Prev->Var->Ty->Elem, Ty->Elem)))
      error(Loc, formatStr("conflicting types for '%s'", Name.c_str()));
    V = Prev->Var;
    if (Ty->K != TypeKind::Array || Ty->ArrayLen != 0)
      V->Ty = Ty;
  } else {
    V = createVar(Name, Ty, Loc);
    V->IsGlobal = true;
    TU->Globals.push_back(V);
    ScopeEntry E;
    E.Var = V;
    declare(Name, E, Loc);
  }

  if (!consume(Tok::Assign))
    return;

  // Initializer.
  if (consume(Tok::LBrace)) {
    while (!is(Tok::RBrace) && !is(Tok::End)) {
      ExprPtr E = parseAssign();
      if (!E)
        break;
      V->InitList.push_back(E.get());
      V->InitOwned.push_back(std::move(E));
      if (!consume(Tok::Comma))
        break;
    }
    expect(Tok::RBrace, "closing initializer list");
    if (V->Ty->K == TypeKind::Array && V->Ty->ArrayLen == 0)
      V->Ty = TU->Types.getArray(V->Ty->Elem,
                                 static_cast<uint32_t>(V->InitList.size()));
  } else if (is(Tok::StringLiteral) && V->Ty->K == TypeKind::Array) {
    V->StrInit = cur().StrValue;
    V->HasStrInit = true;
    ++Pos;
    if (V->Ty->ArrayLen == 0)
      V->Ty = TU->Types.getArray(
          V->Ty->Elem, static_cast<uint32_t>(V->StrInit.size() + 1));
  } else {
    ExprPtr E = parseAssign();
    if (E) {
      E = convertForAssign(std::move(E), V->Ty, Loc, "initializer");
      V->Init = E.get();
      V->InitOwned.push_back(std::move(E));
    }
  }
}

void Parser::parseFunction(CTypeRef FnTy, std::string Name,
                           std::vector<VarDecl *> Params, SourceLoc Loc) {
  FuncDecl *Fn = TU->findFunction(Name);
  if (Fn) {
    if (!typesEqual(Fn->Ty, FnTy))
      error(Loc, formatStr("conflicting types for '%s'", Name.c_str()));
  } else {
    TU->Functions.push_back(std::make_unique<FuncDecl>());
    Fn = TU->Functions.back().get();
    Fn->Name = Name;
    Fn->Ty = FnTy;
    Fn->Loc = Loc;
    ScopeEntry E;
    E.Fn = Fn;
    declare(Name, E, Loc);
  }

  if (consume(Tok::Semi))
    return; // prototype

  if (Fn->Defined)
    error(Loc, formatStr("redefinition of function '%s'", Name.c_str()));
  Fn->Defined = true;
  Fn->Params = std::move(Params);
  CurFn = Fn;
  pushScope();
  for (VarDecl *P : Fn->Params) {
    if (P->Name.empty()) {
      error(Loc, "parameter name omitted in function definition");
      continue;
    }
    ScopeEntry E;
    E.Var = P;
    declare(P->Name, E, P->Loc);
  }
  Fn->Body = parseBlock();
  popScope();
  CurFn = nullptr;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

StmtPtr Parser::parseBlock() {
  auto S = std::make_unique<Stmt>();
  S->K = StmtKind::Block;
  S->Loc = cur().Loc;
  expect(Tok::LBrace, "to open block");
  pushScope();
  while (!is(Tok::RBrace) && !is(Tok::End)) {
    StmtPtr Child = parseStmt();
    if (Child)
      S->Body.push_back(std::move(Child));
  }
  popScope();
  expect(Tok::RBrace, "to close block");
  return S;
}

StmtPtr Parser::parseLocalDecl() {
  auto S = std::make_unique<Stmt>();
  S->K = StmtKind::Decl;
  S->Loc = cur().Loc;
  CTypeRef Base = parseDeclSpec();
  if (!Base) {
    synchronize();
    return S;
  }
  if (consume(Tok::Semi))
    return S; // struct definition only
  do {
    SourceLoc Loc = cur().Loc;
    std::string Name;
    CTypeRef Ty = parseDeclarator(Base, Name, nullptr);
    if (!Ty || Name.empty()) {
      error(Loc, "expected declarator");
      break;
    }
    if (isVoidType(Ty)) {
      error(Loc, "variable has void type");
      break;
    }
    if (Ty->K == TypeKind::Func) {
      error(Loc, "local function declarations are not supported");
      break;
    }
    VarDecl *V = createVar(Name, Ty, Loc);
    ScopeEntry E;
    E.Var = V;
    declare(Name, E, Loc);
    if (consume(Tok::Assign)) {
      if (consume(Tok::LBrace)) {
        while (!is(Tok::RBrace) && !is(Tok::End)) {
          ExprPtr El = parseAssign();
          if (!El)
            break;
          if (V->Ty->K == TypeKind::Array && isScalarType(V->Ty->Elem))
            El = convertForAssign(std::move(El), V->Ty->Elem, Loc,
                                  "initializer");
          V->InitList.push_back(El.get());
          V->InitOwned.push_back(std::move(El));
          if (!consume(Tok::Comma))
            break;
        }
        expect(Tok::RBrace, "closing initializer list");
        if (V->Ty->K == TypeKind::Array && V->Ty->ArrayLen == 0)
          V->Ty = TU->Types.getArray(
              V->Ty->Elem, static_cast<uint32_t>(V->InitList.size()));
      } else if (is(Tok::StringLiteral) && V->Ty->K == TypeKind::Array) {
        V->StrInit = cur().StrValue;
        V->HasStrInit = true;
        ++Pos;
        if (V->Ty->ArrayLen == 0)
          V->Ty = TU->Types.getArray(
              V->Ty->Elem, static_cast<uint32_t>(V->StrInit.size() + 1));
      } else {
        ExprPtr Init = parseAssign();
        if (Init) {
          Init = convertForAssign(std::move(Init), V->Ty, Loc,
                                  "initializer");
          V->Init = Init.get();
          V->InitOwned.push_back(std::move(Init));
        }
      }
    }
    S->Decls.push_back(V);
  } while (consume(Tok::Comma));
  expect(Tok::Semi, "after declaration");
  return S;
}

StmtPtr Parser::parseStmt() {
  switch (cur().Kind) {
  case Tok::LBrace:
    return parseBlock();
  case Tok::KwIf:
    return parseIf();
  case Tok::KwWhile:
    return parseWhile();
  case Tok::KwDo:
    return parseDoWhile();
  case Tok::KwFor:
    return parseFor();
  case Tok::KwReturn:
    return parseReturn();
  case Tok::KwSwitch:
    return parseSwitch();
  case Tok::KwBreak: {
    auto S = std::make_unique<Stmt>();
    S->K = StmtKind::Break;
    S->Loc = cur().Loc;
    ++Pos;
    if (LoopDepth == 0 && SwitchDepth == 0)
      error(S->Loc, "'break' outside loop or switch");
    expect(Tok::Semi, "after break");
    return S;
  }
  case Tok::KwContinue: {
    auto S = std::make_unique<Stmt>();
    S->K = StmtKind::Continue;
    S->Loc = cur().Loc;
    ++Pos;
    if (LoopDepth == 0)
      error(S->Loc, "'continue' outside loop");
    expect(Tok::Semi, "after continue");
    return S;
  }
  case Tok::KwCase:
  case Tok::KwDefault: {
    auto S = std::make_unique<Stmt>();
    S->K = StmtKind::Case;
    S->Loc = cur().Loc;
    if (SwitchDepth == 0)
      error(S->Loc, "case label outside switch");
    if (consume(Tok::KwDefault)) {
      S->IsDefault = true;
    } else {
      expect(Tok::KwCase, "in case label");
      ExprPtr V = parseCond();
      auto CV = V ? constEval(V.get()) : std::nullopt;
      if (!CV)
        error(S->Loc, "case label is not an integer constant");
      else
        S->CaseValue = *CV;
    }
    expect(Tok::Colon, "after case label");
    return S;
  }
  case Tok::Semi: {
    auto S = std::make_unique<Stmt>();
    S->K = StmtKind::Empty;
    S->Loc = cur().Loc;
    ++Pos;
    return S;
  }
  default:
    break;
  }
  if (startsDeclSpec())
    return parseLocalDecl();
  auto S = std::make_unique<Stmt>();
  S->K = StmtKind::Expr;
  S->Loc = cur().Loc;
  S->E = parseExpr();
  if (!S->E)
    synchronize();
  else
    expect(Tok::Semi, "after expression");
  return S;
}

StmtPtr Parser::parseIf() {
  auto S = std::make_unique<Stmt>();
  S->K = StmtKind::If;
  S->Loc = cur().Loc;
  expect(Tok::KwIf, "");
  expect(Tok::LParen, "after if");
  S->E = checkCondition(parseExpr());
  expect(Tok::RParen, "after if condition");
  S->S1 = parseStmt();
  if (consume(Tok::KwElse))
    S->S2 = parseStmt();
  return S;
}

StmtPtr Parser::parseWhile() {
  auto S = std::make_unique<Stmt>();
  S->K = StmtKind::While;
  S->Loc = cur().Loc;
  expect(Tok::KwWhile, "");
  expect(Tok::LParen, "after while");
  S->E = checkCondition(parseExpr());
  expect(Tok::RParen, "after while condition");
  ++LoopDepth;
  S->S1 = parseStmt();
  --LoopDepth;
  return S;
}

StmtPtr Parser::parseDoWhile() {
  auto S = std::make_unique<Stmt>();
  S->K = StmtKind::DoWhile;
  S->Loc = cur().Loc;
  expect(Tok::KwDo, "");
  ++LoopDepth;
  S->S1 = parseStmt();
  --LoopDepth;
  expect(Tok::KwWhile, "after do body");
  expect(Tok::LParen, "after while");
  S->E = checkCondition(parseExpr());
  expect(Tok::RParen, "after do-while condition");
  expect(Tok::Semi, "after do-while");
  return S;
}

StmtPtr Parser::parseFor() {
  auto S = std::make_unique<Stmt>();
  S->K = StmtKind::For;
  S->Loc = cur().Loc;
  expect(Tok::KwFor, "");
  expect(Tok::LParen, "after for");
  pushScope();
  if (!consume(Tok::Semi)) {
    if (startsDeclSpec()) {
      S->S2 = parseLocalDecl(); // reuse S2 as the init declaration
    } else {
      S->E2 = parseExpr();
      expect(Tok::Semi, "after for-init");
    }
  }
  if (!is(Tok::Semi))
    S->E = checkCondition(parseExpr());
  expect(Tok::Semi, "after for-condition");
  if (!is(Tok::RParen))
    S->E3 = parseExpr();
  expect(Tok::RParen, "after for clauses");
  ++LoopDepth;
  S->S1 = parseStmt();
  --LoopDepth;
  popScope();
  return S;
}

StmtPtr Parser::parseReturn() {
  auto S = std::make_unique<Stmt>();
  S->K = StmtKind::Return;
  S->Loc = cur().Loc;
  expect(Tok::KwReturn, "");
  CTypeRef RetTy = CurFn ? CurFn->Ty->Ret : TU->Types.intTy();
  if (!is(Tok::Semi)) {
    ExprPtr E = parseExpr();
    if (isVoidType(RetTy)) {
      error(S->Loc, "returning a value from a void function");
    } else if (E) {
      S->E = convertForAssign(std::move(E), RetTy, S->Loc, "return value");
    }
  } else if (!isVoidType(RetTy)) {
    error(S->Loc, "non-void function must return a value");
  }
  expect(Tok::Semi, "after return");
  return S;
}

StmtPtr Parser::parseSwitch() {
  auto S = std::make_unique<Stmt>();
  S->K = StmtKind::Switch;
  S->Loc = cur().Loc;
  expect(Tok::KwSwitch, "");
  expect(Tok::LParen, "after switch");
  ExprPtr E = parseExpr();
  if (E) {
    E = decay(std::move(E));
    if (!isIntegerType(E->Ty))
      error(S->Loc, "switch subject must have integer type");
    else
      E = promote(std::move(E));
  }
  S->E = std::move(E);
  expect(Tok::RParen, "after switch subject");
  ++SwitchDepth;
  // Body must be a block; case labels live directly in it.
  S->S1 = parseBlock();
  --SwitchDepth;
  return S;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

ExprPtr Parser::makeIntLit(int64_t V, SourceLoc Loc, CTypeRef Ty) {
  auto E = std::make_unique<Expr>();
  E->K = ExprKind::IntLit;
  E->Loc = Loc;
  E->Ty = Ty ? Ty : TU->Types.intTy();
  E->IntVal = static_cast<int32_t>(V);
  return E;
}

ExprPtr Parser::decay(ExprPtr E) {
  if (!E)
    return E;
  if (E->Ty->K == TypeKind::Array) {
    auto C = std::make_unique<Expr>();
    C->K = ExprKind::Cast;
    C->Loc = E->Loc;
    C->Ty = TU->Types.getPointer(E->Ty->Elem);
    C->L = std::move(E);
    return C;
  }
  if (E->Ty->K == TypeKind::Func) {
    auto C = std::make_unique<Expr>();
    C->K = ExprKind::Cast;
    C->Loc = E->Loc;
    C->Ty = TU->Types.getPointer(E->Ty);
    C->L = std::move(E);
    return C;
  }
  return E;
}

ExprPtr Parser::castTo(ExprPtr E, CTypeRef Ty, bool Implicit) {
  if (!E || typesEqual(E->Ty, Ty))
    return E;
  auto C = std::make_unique<Expr>();
  C->K = ExprKind::Cast;
  C->Loc = E->Loc;
  C->Ty = Ty;
  C->L = std::move(E);
  (void)Implicit;
  return C;
}

ExprPtr Parser::promote(ExprPtr E) {
  if (!E)
    return E;
  if (isIntegerType(E->Ty) && typeSize(E->Ty) < 4) {
    CTypeRef To = TU->Types.intTy();
    return castTo(std::move(E), To, /*Implicit=*/true);
  }
  return E;
}

CTypeRef Parser::usualArith(ExprPtr &L, ExprPtr &R) {
  TypeContext &T = TU->Types;
  CTypeRef LT = L->Ty, RT = R->Ty;
  CTypeRef Common;
  if (LT->K == TypeKind::Double || RT->K == TypeKind::Double)
    Common = T.doubleTy();
  else if (LT->K == TypeKind::Float || RT->K == TypeKind::Float)
    Common = T.floatTy();
  else if (LT->K == TypeKind::UInt || RT->K == TypeKind::UInt)
    Common = T.uintTy();
  else
    Common = T.intTy();
  L = castTo(std::move(L), Common, true);
  R = castTo(std::move(R), Common, true);
  return Common;
}

ExprPtr Parser::convertForAssign(ExprPtr E, CTypeRef Ty, SourceLoc Loc,
                                 const char *What) {
  if (!E)
    return E;
  E = decay(std::move(E));
  if (typesEqual(E->Ty, Ty))
    return E;
  if (isArithType(Ty) && isArithType(E->Ty))
    return castTo(std::move(E), Ty, true);
  if (isPointerType(Ty) && isPointerType(E->Ty))
    return castTo(std::move(E), Ty, true); // K&R-style laxness
  if (isPointerType(Ty) && E->K == ExprKind::IntLit && E->IntVal == 0)
    return castTo(std::move(E), Ty, true); // null pointer constant
  error(Loc, formatStr("incompatible types in %s: cannot convert %s to %s",
                       What, typeName(E->Ty).c_str(),
                       typeName(Ty).c_str()));
  return castTo(std::move(E), Ty, true);
}

ExprPtr Parser::checkCondition(ExprPtr E) {
  if (!E)
    return E;
  E = decay(std::move(E));
  if (!isScalarType(E->Ty)) {
    error(E->Loc, formatStr("condition has non-scalar type %s",
                            typeName(E->Ty).c_str()));
  }
  return E;
}

std::optional<int64_t> Parser::constEval(const Expr *E) {
  if (!E)
    return std::nullopt;
  switch (E->K) {
  case ExprKind::IntLit:
    return E->IntVal;
  case ExprKind::Cast: {
    auto V = constEval(E->L.get());
    if (!V)
      return std::nullopt;
    switch (E->Ty->K) {
    case TypeKind::Char:
      return static_cast<int8_t>(*V);
    case TypeKind::UChar:
      return static_cast<uint8_t>(*V);
    case TypeKind::Short:
      return static_cast<int16_t>(*V);
    case TypeKind::UShort:
      return static_cast<uint16_t>(*V);
    case TypeKind::Int:
      return static_cast<int32_t>(*V);
    case TypeKind::UInt:
      return static_cast<int64_t>(static_cast<uint32_t>(*V));
    default:
      return std::nullopt;
    }
  }
  case ExprKind::Unary: {
    auto V = constEval(E->L.get());
    if (!V)
      return std::nullopt;
    switch (E->Op) {
    case Tok::Minus:
      return -*V;
    case Tok::Tilde:
      return ~*V;
    case Tok::Bang:
      return *V == 0 ? 1 : 0;
    default:
      return std::nullopt;
    }
  }
  case ExprKind::Binary: {
    auto A = constEval(E->L.get());
    auto B = constEval(E->R.get());
    if (!A || !B)
      return std::nullopt;
    int32_t X = static_cast<int32_t>(*A), Y = static_cast<int32_t>(*B);
    switch (E->Op) {
    case Tok::Plus:
      return X + Y;
    case Tok::Minus:
      return X - Y;
    case Tok::Star:
      return X * Y;
    case Tok::Slash:
      return Y == 0 ? std::optional<int64_t>() : X / Y;
    case Tok::Percent:
      return Y == 0 ? std::optional<int64_t>() : X % Y;
    case Tok::Amp:
      return X & Y;
    case Tok::Pipe:
      return X | Y;
    case Tok::Caret:
      return X ^ Y;
    case Tok::Shl:
      return X << (Y & 31);
    case Tok::Shr:
      return X >> (Y & 31);
    case Tok::Lt:
      return X < Y;
    case Tok::Gt:
      return X > Y;
    case Tok::Le:
      return X <= Y;
    case Tok::Ge:
      return X >= Y;
    case Tok::EqEq:
      return X == Y;
    case Tok::NotEq:
      return X != Y;
    default:
      return std::nullopt;
    }
  }
  default:
    return std::nullopt;
  }
}

ExprPtr Parser::parseExpr() {
  ExprPtr L = parseAssign();
  while (L && is(Tok::Comma)) {
    SourceLoc Loc = cur().Loc;
    ++Pos;
    ExprPtr R = parseAssign();
    if (!R)
      break;
    auto E = std::make_unique<Expr>();
    E->K = ExprKind::Comma;
    E->Loc = Loc;
    E->Ty = R->Ty;
    E->L = std::move(L);
    E->R = std::move(R);
    L = std::move(E);
  }
  return L;
}

ExprPtr Parser::buildAssign(ExprPtr L, ExprPtr R, SourceLoc Loc) {
  if (!L || !R)
    return nullptr;
  if (!L->IsLValue || L->Ty->K == TypeKind::Array) {
    error(Loc, "assignment target is not an lvalue");
    return L;
  }
  if (L->Ty->K == TypeKind::Struct) {
    error(Loc, "struct assignment is not supported (use explicit copies)");
    return L;
  }
  R = convertForAssign(std::move(R), L->Ty, Loc, "assignment");
  auto E = std::make_unique<Expr>();
  E->K = ExprKind::Assign;
  E->Loc = Loc;
  E->Ty = L->Ty;
  E->L = std::move(L);
  E->R = std::move(R);
  return E;
}

ExprPtr Parser::parseAssign() {
  ExprPtr L = parseCond();
  if (!L)
    return L;
  Tok K = cur().Kind;
  SourceLoc Loc = cur().Loc;
  switch (K) {
  case Tok::Assign: {
    ++Pos;
    ExprPtr R = parseAssign();
    return buildAssign(std::move(L), std::move(R), Loc);
  }
  case Tok::PlusAssign:
  case Tok::MinusAssign:
  case Tok::StarAssign:
  case Tok::SlashAssign:
  case Tok::PercentAssign:
  case Tok::ShlAssign:
  case Tok::ShrAssign:
  case Tok::AmpAssign:
  case Tok::PipeAssign:
  case Tok::CaretAssign: {
    ++Pos;
    ExprPtr R = parseAssign();
    if (!L->IsLValue) {
      error(Loc, "assignment target is not an lvalue");
      return L;
    }
    Tok Under;
    switch (K) {
    case Tok::PlusAssign:
      Under = Tok::Plus;
      break;
    case Tok::MinusAssign:
      Under = Tok::Minus;
      break;
    case Tok::StarAssign:
      Under = Tok::Star;
      break;
    case Tok::SlashAssign:
      Under = Tok::Slash;
      break;
    case Tok::PercentAssign:
      Under = Tok::Percent;
      break;
    case Tok::ShlAssign:
      Under = Tok::Shl;
      break;
    case Tok::ShrAssign:
      Under = Tok::Shr;
      break;
    case Tok::AmpAssign:
      Under = Tok::Amp;
      break;
    case Tok::PipeAssign:
      Under = Tok::Pipe;
      break;
    default:
      Under = Tok::Caret;
      break;
    }
    auto E = std::make_unique<Expr>();
    E->K = ExprKind::CompoundAssign;
    E->Loc = Loc;
    E->Op = Under;
    E->Ty = L->Ty;
    if (L->Ty->K == TypeKind::Pointer &&
        (Under == Tok::Plus || Under == Tok::Minus)) {
      if (R) {
        R = decay(std::move(R));
        if (!isIntegerType(R->Ty))
          error(Loc, "pointer arithmetic requires an integer operand");
        R = promote(std::move(R));
      }
    } else if (R) {
      R = decay(std::move(R));
      if (!isArithType(L->Ty) || !isArithType(R->Ty))
        error(Loc, "invalid operands to compound assignment");
      // Compute in the promoted common type; lowering truncates on store.
      R = promote(std::move(R));
    }
    E->L = std::move(L);
    E->R = std::move(R);
    return E;
  }
  default:
    return L;
  }
}

ExprPtr Parser::parseCond() {
  ExprPtr C = parseBinary(0);
  if (!C || !is(Tok::Question))
    return C;
  SourceLoc Loc = cur().Loc;
  ++Pos;
  C = checkCondition(std::move(C));
  ExprPtr L = parseAssign();
  expect(Tok::Colon, "in conditional expression");
  ExprPtr R = parseCond();
  if (!L || !R)
    return C;
  L = decay(std::move(L));
  R = decay(std::move(R));
  auto E = std::make_unique<Expr>();
  E->K = ExprKind::Cond;
  E->Loc = Loc;
  if (isArithType(L->Ty) && isArithType(R->Ty)) {
    E->Ty = usualArith(L, R);
  } else if (typesEqual(L->Ty, R->Ty)) {
    E->Ty = L->Ty;
  } else if (isPointerType(L->Ty) && isPointerType(R->Ty)) {
    E->Ty = L->Ty;
  } else if (isPointerType(L->Ty) && R->K == ExprKind::IntLit &&
             R->IntVal == 0) {
    R = castTo(std::move(R), L->Ty, true);
    E->Ty = L->Ty;
  } else if (isPointerType(R->Ty) && L->K == ExprKind::IntLit &&
             L->IntVal == 0) {
    L = castTo(std::move(L), R->Ty, true);
    E->Ty = R->Ty;
  } else {
    error(Loc, "incompatible operand types in conditional expression");
    E->Ty = L->Ty;
  }
  E->C = std::move(C);
  E->L = std::move(L);
  E->R = std::move(R);
  return E;
}

namespace {
/// Binary operator precedence (higher binds tighter); -1 = not binary.
int precedenceOf(Tok K) {
  switch (K) {
  case Tok::PipePipe:
    return 1;
  case Tok::AmpAmp:
    return 2;
  case Tok::Pipe:
    return 3;
  case Tok::Caret:
    return 4;
  case Tok::Amp:
    return 5;
  case Tok::EqEq:
  case Tok::NotEq:
    return 6;
  case Tok::Lt:
  case Tok::Gt:
  case Tok::Le:
  case Tok::Ge:
    return 7;
  case Tok::Shl:
  case Tok::Shr:
    return 8;
  case Tok::Plus:
  case Tok::Minus:
    return 9;
  case Tok::Star:
  case Tok::Slash:
  case Tok::Percent:
    return 10;
  default:
    return -1;
  }
}
} // namespace

ExprPtr Parser::buildBinary(Tok Op, ExprPtr L, ExprPtr R, SourceLoc Loc) {
  if (!L || !R)
    return L ? std::move(L) : std::move(R);
  L = decay(std::move(L));
  R = decay(std::move(R));
  TypeContext &T = TU->Types;
  auto E = std::make_unique<Expr>();
  E->K = ExprKind::Binary;
  E->Loc = Loc;
  E->Op = Op;

  switch (Op) {
  case Tok::AmpAmp:
  case Tok::PipePipe:
    if (!isScalarType(L->Ty) || !isScalarType(R->Ty))
      error(Loc, "logical operators require scalar operands");
    E->Ty = T.intTy();
    break;
  case Tok::EqEq:
  case Tok::NotEq:
  case Tok::Lt:
  case Tok::Gt:
  case Tok::Le:
  case Tok::Ge:
    if (isArithType(L->Ty) && isArithType(R->Ty)) {
      usualArith(L, R);
    } else if (isPointerType(L->Ty) && isPointerType(R->Ty)) {
      // pointer comparison; compared as unsigned addresses
    } else if (isPointerType(L->Ty) && R->K == ExprKind::IntLit &&
               R->IntVal == 0) {
      R = castTo(std::move(R), L->Ty, true);
    } else if (isPointerType(R->Ty) && L->K == ExprKind::IntLit &&
               L->IntVal == 0) {
      L = castTo(std::move(L), R->Ty, true);
    } else {
      error(Loc, formatStr("invalid comparison between %s and %s",
                           typeName(L->Ty).c_str(),
                           typeName(R->Ty).c_str()));
    }
    E->Ty = T.intTy();
    break;
  case Tok::Plus:
    if (isPointerType(L->Ty) && isIntegerType(R->Ty)) {
      R = promote(std::move(R));
      E->Ty = L->Ty;
    } else if (isIntegerType(L->Ty) && isPointerType(R->Ty)) {
      std::swap(L, R);
      R = promote(std::move(R));
      E->Ty = L->Ty;
    } else if (isArithType(L->Ty) && isArithType(R->Ty)) {
      E->Ty = usualArith(L, R);
    } else {
      error(Loc, "invalid operands to +");
      E->Ty = T.intTy();
    }
    break;
  case Tok::Minus:
    if (isPointerType(L->Ty) && isPointerType(R->Ty)) {
      E->Ty = T.intTy(); // ptrdiff
    } else if (isPointerType(L->Ty) && isIntegerType(R->Ty)) {
      R = promote(std::move(R));
      E->Ty = L->Ty;
    } else if (isArithType(L->Ty) && isArithType(R->Ty)) {
      E->Ty = usualArith(L, R);
    } else {
      error(Loc, "invalid operands to -");
      E->Ty = T.intTy();
    }
    break;
  case Tok::Star:
  case Tok::Slash:
    if (!isArithType(L->Ty) || !isArithType(R->Ty)) {
      error(Loc, "invalid operands to multiplicative operator");
      E->Ty = T.intTy();
    } else {
      E->Ty = usualArith(L, R);
    }
    break;
  case Tok::Percent:
  case Tok::Amp:
  case Tok::Pipe:
  case Tok::Caret:
  case Tok::Shl:
  case Tok::Shr:
    if (!isIntegerType(L->Ty) || !isIntegerType(R->Ty)) {
      error(Loc, "bitwise/modulo operators require integer operands");
      E->Ty = T.intTy();
    } else if (Op == Tok::Shl || Op == Tok::Shr) {
      L = promote(std::move(L));
      R = promote(std::move(R));
      E->Ty = L->Ty;
    } else {
      E->Ty = usualArith(L, R);
    }
    break;
  default:
    assert(false && "not a binary operator");
    E->Ty = T.intTy();
    break;
  }
  E->L = std::move(L);
  E->R = std::move(R);
  return E;
}

ExprPtr Parser::parseBinary(int MinPrec) {
  ExprPtr L = parseCastOrUnary();
  while (L) {
    int Prec = precedenceOf(cur().Kind);
    if (Prec < 0 || Prec < MinPrec)
      break;
    Tok Op = cur().Kind;
    SourceLoc Loc = cur().Loc;
    ++Pos;
    ExprPtr R = parseBinary(Prec + 1);
    L = buildBinary(Op, std::move(L), std::move(R), Loc);
  }
  return L;
}

ExprPtr Parser::parseCastOrUnary() {
  // "( type-name )" cast — lookahead distinguishes from parenthesized expr.
  if (is(Tok::LParen)) {
    Tok Next = peek().Kind;
    bool IsType = false;
    switch (Next) {
    case Tok::KwVoid:
    case Tok::KwChar:
    case Tok::KwShort:
    case Tok::KwInt:
    case Tok::KwUnsigned:
    case Tok::KwSigned:
    case Tok::KwFloat:
    case Tok::KwDouble:
    case Tok::KwStruct:
    case Tok::KwEnum:
    case Tok::KwConst:
    case Tok::KwLong:
      IsType = true;
      break;
    default:
      break;
    }
    if (IsType) {
      SourceLoc Loc = cur().Loc;
      ++Pos;
      CTypeRef Ty = parseTypeName();
      expect(Tok::RParen, "after cast type");
      ExprPtr E = parseCastOrUnary();
      if (!E || !Ty)
        return E;
      E = decay(std::move(E));
      if (!isScalarType(Ty) && !isVoidType(Ty))
        error(Loc, "cast target must be a scalar type");
      else if (!isScalarType(E->Ty) && !isVoidType(Ty))
        error(Loc, "cast operand must be a scalar");
      return castTo(std::move(E), Ty, /*Implicit=*/false);
    }
  }
  return parseUnary();
}

ExprPtr Parser::parseUnary() {
  SourceLoc Loc = cur().Loc;
  switch (cur().Kind) {
  case Tok::Plus:
    ++Pos;
    return promote(decay(parseCastOrUnary()));
  case Tok::Minus:
  case Tok::Tilde:
  case Tok::Bang: {
    Tok Op = cur().Kind;
    ++Pos;
    ExprPtr E = parseCastOrUnary();
    if (!E)
      return E;
    E = decay(std::move(E));
    auto U = std::make_unique<Expr>();
    U->K = ExprKind::Unary;
    U->Loc = Loc;
    U->Op = Op;
    if (Op == Tok::Bang) {
      if (!isScalarType(E->Ty))
        error(Loc, "'!' requires a scalar operand");
      U->Ty = TU->Types.intTy();
    } else if (Op == Tok::Tilde) {
      if (!isIntegerType(E->Ty))
        error(Loc, "'~' requires an integer operand");
      E = promote(std::move(E));
      U->Ty = E->Ty;
    } else {
      if (!isArithType(E->Ty))
        error(Loc, "unary '-' requires an arithmetic operand");
      E = promote(std::move(E));
      U->Ty = E->Ty;
    }
    U->L = std::move(E);
    return U;
  }
  case Tok::Star: {
    ++Pos;
    ExprPtr E = parseCastOrUnary();
    if (!E)
      return E;
    E = decay(std::move(E));
    if (!isPointerType(E->Ty)) {
      error(Loc, formatStr("cannot dereference %s",
                           typeName(E->Ty).c_str()));
      return E;
    }
    if (E->Ty->Pointee->K == TypeKind::Func)
      return E; // *fnptr == fnptr
    auto D = std::make_unique<Expr>();
    D->K = ExprKind::Deref;
    D->Loc = Loc;
    D->Ty = E->Ty->Pointee;
    D->IsLValue = true;
    D->L = std::move(E);
    return D;
  }
  case Tok::Amp: {
    ++Pos;
    ExprPtr E = parseCastOrUnary();
    if (!E)
      return E;
    if (E->K == ExprKind::FuncRef)
      return decay(std::move(E)); // &f == f
    if (!E->IsLValue) {
      error(Loc, "cannot take the address of an rvalue");
      return E;
    }
    if (E->K == ExprKind::VarRef && !E->Var->IsGlobal)
      E->Var->AddressTaken = true;
    auto A = std::make_unique<Expr>();
    A->K = ExprKind::AddrOf;
    A->Loc = Loc;
    A->Ty = TU->Types.getPointer(E->Ty);
    A->L = std::move(E);
    return A;
  }
  case Tok::PlusPlus:
  case Tok::MinusMinus: {
    Tok Op = cur().Kind;
    ++Pos;
    ExprPtr E = parseUnary();
    if (!E)
      return E;
    if (!E->IsLValue || !(isArithType(E->Ty) || isPointerType(E->Ty))) {
      error(Loc, "++/-- requires a scalar lvalue");
      return E;
    }
    auto U = std::make_unique<Expr>();
    U->K = ExprKind::IncDec;
    U->Loc = Loc;
    U->Op = Op;
    U->IsPostfix = false;
    U->Ty = E->Ty;
    U->L = std::move(E);
    return U;
  }
  case Tok::KwSizeof: {
    ++Pos;
    uint32_t Size = 0;
    if (is(Tok::LParen)) {
      Tok Next = peek().Kind;
      bool IsType = false;
      switch (Next) {
      case Tok::KwVoid:
      case Tok::KwChar:
      case Tok::KwShort:
      case Tok::KwInt:
      case Tok::KwUnsigned:
      case Tok::KwSigned:
      case Tok::KwFloat:
      case Tok::KwDouble:
      case Tok::KwStruct:
      case Tok::KwEnum:
      case Tok::KwConst:
      case Tok::KwLong:
        IsType = true;
        break;
      default:
        break;
      }
      if (IsType) {
        ++Pos;
        CTypeRef Ty = parseTypeName();
        expect(Tok::RParen, "after sizeof type");
        Size = Ty ? typeSize(Ty) : 0;
        return makeIntLit(Size, Loc, TU->Types.uintTy());
      }
    }
    ExprPtr E = parseUnary();
    Size = E ? typeSize(E->Ty) : 0;
    return makeIntLit(Size, Loc, TU->Types.uintTy());
  }
  default:
    return parsePostfix(parsePrimary());
  }
}

ExprPtr Parser::parsePostfix(ExprPtr E) {
  while (E) {
    SourceLoc Loc = cur().Loc;
    if (consume(Tok::LBracket)) {
      ExprPtr Idx = parseExpr();
      expect(Tok::RBracket, "closing subscript");
      E = decay(std::move(E));
      if (Idx)
        Idx = promote(decay(std::move(Idx)));
      // Support idx[ptr] too by swapping.
      if (Idx && isPointerType(Idx->Ty) && isIntegerType(E->Ty))
        std::swap(E, Idx);
      if (!isPointerType(E->Ty)) {
        error(Loc, "subscripted value is not an array or pointer");
        continue;
      }
      if (Idx && !isIntegerType(Idx->Ty))
        error(Loc, "array subscript is not an integer");
      // a[i] == *(a + i)
      ExprPtr Sum = buildBinary(Tok::Plus, std::move(E), std::move(Idx),
                                Loc);
      auto D = std::make_unique<Expr>();
      D->K = ExprKind::Deref;
      D->Loc = Loc;
      D->Ty = Sum->Ty->Pointee;
      D->IsLValue = true;
      D->L = std::move(Sum);
      E = std::move(D);
      continue;
    }
    if (consume(Tok::LParen)) {
      // Call.
      std::vector<ExprPtr> Args;
      while (!is(Tok::RParen) && !is(Tok::End)) {
        ExprPtr A = parseAssign();
        if (!A)
          break;
        Args.push_back(std::move(A));
        if (!consume(Tok::Comma))
          break;
      }
      expect(Tok::RParen, "closing call");
      CTypeRef FnTy = nullptr;
      if (E->K == ExprKind::FuncRef) {
        FnTy = E->Fn->Ty;
      } else {
        E = decay(std::move(E));
        if (isPointerType(E->Ty) && E->Ty->Pointee->K == TypeKind::Func)
          FnTy = E->Ty->Pointee;
      }
      if (!FnTy) {
        error(Loc, "called object is not a function");
        continue;
      }
      auto C = std::make_unique<Expr>();
      C->K = ExprKind::Call;
      C->Loc = Loc;
      C->Ty = FnTy->Ret;
      if (Args.size() != FnTy->Params.size())
        error(Loc, formatStr("call expects %zu arguments, got %zu",
                             FnTy->Params.size(), Args.size()));
      for (size_t I = 0; I < Args.size(); ++I) {
        ExprPtr A = std::move(Args[I]);
        if (I < FnTy->Params.size())
          A = convertForAssign(std::move(A), FnTy->Params[I], Loc,
                               "argument");
        else
          A = decay(std::move(A));
        C->Args.push_back(std::move(A));
      }
      C->L = std::move(E);
      E = std::move(C);
      continue;
    }
    if (is(Tok::Dot) || is(Tok::Arrow)) {
      bool IsArrow = cur().Kind == Tok::Arrow;
      ++Pos;
      Token Name = expect(Tok::Identifier, "after member operator");
      const StructDef *SD = nullptr;
      if (IsArrow) {
        E = decay(std::move(E));
        if (isPointerType(E->Ty) && E->Ty->Pointee->K == TypeKind::Struct)
          SD = E->Ty->Pointee->SD;
      } else if (E->Ty->K == TypeKind::Struct) {
        SD = E->Ty->SD;
      }
      if (!SD || !SD->Complete) {
        error(Loc, "member access requires a complete struct type");
        continue;
      }
      const StructDef::Field *F = SD->findField(Name.Text);
      if (!F) {
        error(Name.Loc, formatStr("no field '%s' in struct %s",
                                  Name.Text.c_str(), SD->Name.c_str()));
        continue;
      }
      if (IsArrow) {
        // p->f  ==  (*p).f : materialize the deref.
        auto D = std::make_unique<Expr>();
        D->K = ExprKind::Deref;
        D->Loc = Loc;
        D->Ty = E->Ty->Pointee;
        D->IsLValue = true;
        D->L = std::move(E);
        E = std::move(D);
      }
      auto M = std::make_unique<Expr>();
      M->K = ExprKind::Member;
      M->Loc = Loc;
      M->Ty = F->Ty;
      M->IsLValue = E->IsLValue;
      M->Field = F;
      M->L = std::move(E);
      E = std::move(M);
      continue;
    }
    if (is(Tok::PlusPlus) || is(Tok::MinusMinus)) {
      Tok Op = cur().Kind;
      ++Pos;
      if (!E->IsLValue || !(isArithType(E->Ty) || isPointerType(E->Ty))) {
        error(Loc, "++/-- requires a scalar lvalue");
        continue;
      }
      auto U = std::make_unique<Expr>();
      U->K = ExprKind::IncDec;
      U->Loc = Loc;
      U->Op = Op;
      U->IsPostfix = true;
      U->Ty = E->Ty;
      U->L = std::move(E);
      E = std::move(U);
      continue;
    }
    break;
  }
  return E;
}

ExprPtr Parser::parsePrimary() {
  SourceLoc Loc = cur().Loc;
  switch (cur().Kind) {
  case Tok::IntLiteral: {
    int64_t V = cur().IntValue;
    ++Pos;
    return makeIntLit(V, Loc);
  }
  case Tok::CharLiteral: {
    int64_t V = cur().IntValue;
    ++Pos;
    return makeIntLit(V, Loc); // char literals have type int in C
  }
  case Tok::FloatLiteral: {
    auto E = std::make_unique<Expr>();
    E->K = ExprKind::FloatLit;
    E->Loc = Loc;
    E->Ty = cur().IsFloatSuffix ? TU->Types.floatTy() : TU->Types.doubleTy();
    E->FloatVal = cur().FloatValue;
    ++Pos;
    return E;
  }
  case Tok::StringLiteral: {
    auto E = std::make_unique<Expr>();
    E->K = ExprKind::StringLit;
    E->Loc = Loc;
    E->Ty = TU->Types.getPointer(TU->Types.charTy());
    E->Str = cur().StrValue;
    E->IntVal = static_cast<int64_t>(TU->StringPool.size());
    TU->StringPool.push_back(cur().StrValue);
    ++Pos;
    return E;
  }
  case Tok::Identifier: {
    std::string Name = cur().Text;
    ++Pos;
    ScopeEntry *Entry = lookup(Name);
    if (!Entry) {
      error(Loc, formatStr("use of undeclared identifier '%s'",
                           Name.c_str()));
      return makeIntLit(0, Loc);
    }
    if (Entry->IsEnumConst)
      return makeIntLit(Entry->EnumValue, Loc);
    if (Entry->Fn) {
      auto E = std::make_unique<Expr>();
      E->K = ExprKind::FuncRef;
      E->Loc = Loc;
      E->Ty = Entry->Fn->Ty;
      E->Fn = Entry->Fn;
      return E;
    }
    auto E = std::make_unique<Expr>();
    E->K = ExprKind::VarRef;
    E->Loc = Loc;
    E->Ty = Entry->Var->Ty;
    E->Var = Entry->Var;
    E->IsLValue = true;
    return E;
  }
  case Tok::LParen: {
    ++Pos;
    ExprPtr E = parseExpr();
    expect(Tok::RParen, "closing parenthesis");
    return E;
  }
  default:
    error(Loc, formatStr("expected expression, got %s",
                         getTokenName(cur().Kind)));
    ++Pos;
    return nullptr;
  }
}

} // namespace

std::unique_ptr<TranslationUnit>
omni::minic::parse(const std::string &Source, DiagnosticEngine &Diags) {
  std::vector<Token> Toks = tokenize(Source, Diags);
  if (Diags.hasErrors())
    return nullptr;
  Parser P(std::move(Toks), Diags);
  return P.run();
}
