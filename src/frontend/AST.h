//===- frontend/AST.h - MiniC abstract syntax tree --------------*- C++ -*-===//
///
/// \file
/// Typed AST produced by the parser (semantic analysis is interleaved with
/// parsing, as in classic one-pass C compilers). Every expression node
/// carries its C type; implicit conversions are explicit Cast nodes by the
/// time the tree reaches lowering.
///
//===----------------------------------------------------------------------===//
#ifndef OMNI_FRONTEND_AST_H
#define OMNI_FRONTEND_AST_H

#include "frontend/Lexer.h"
#include "frontend/Types.h"

#include <memory>

namespace omni {
namespace minic {

struct FuncDecl;

/// A variable (global, local, or parameter).
struct VarDecl {
  std::string Name;
  CTypeRef Ty = nullptr;
  SourceLoc Loc;
  bool IsGlobal = false;
  bool IsParam = false;
  /// Address-taken locals (and all aggregates) live in frame slots; other
  /// scalars live in IR virtual registers.
  bool AddressTaken = false;

  struct Expr *Init = nullptr; ///< scalar initializer (owned by InitOwned)
  std::vector<struct Expr *> InitList; ///< brace elements (owned below)
  std::string StrInit; ///< char-array initializer from a string literal
  bool HasStrInit = false;

  std::vector<std::unique_ptr<struct Expr>> InitOwned;

  // Lowering annotations.
  int FrameSlot = -1;
  ir::Value IrReg;
};

enum class ExprKind : uint8_t {
  IntLit,
  FloatLit,
  StringLit, ///< value = pointer to anonymous global
  VarRef,
  FuncRef,   ///< function designator (decays to pointer)
  Unary,     ///< Op in {Minus, Tilde, Bang}
  Deref,     ///< *p  (lvalue)
  AddrOf,    ///< &lv
  Binary,    ///< arithmetic / relational / logical (AmpAmp, PipePipe)
  Assign,
  CompoundAssign, ///< Op holds the underlying operator token (+= etc.)
  IncDec,    ///< Op in {PlusPlus, MinusMinus}; IsPostfix
  Cond,      ///< C ? L : R
  Call,      ///< L = callee (FuncRef or pointer expression)
  Member,    ///< L.field (lvalue when L is)
  Cast,      ///< explicit or implicit
  SizeOf,    ///< folded to IntLit during parsing; kept for tests
  Comma,     ///< L, R
};

/// One expression node.
struct Expr {
  ExprKind K;
  SourceLoc Loc;
  CTypeRef Ty = nullptr;
  /// True when this expression designates an object (can be assigned /
  /// address-taken). Arrays are lvalues that decay on use.
  bool IsLValue = false;

  int64_t IntVal = 0;
  double FloatVal = 0;
  std::string Str;        ///< string literal bytes (no NUL)
  VarDecl *Var = nullptr; ///< VarRef
  FuncDecl *Fn = nullptr; ///< FuncRef / direct Call
  Tok Op = Tok::End;
  bool IsPostfix = false;
  const StructDef::Field *Field = nullptr; ///< Member

  std::unique_ptr<Expr> L, R, C;
  std::vector<std::unique_ptr<Expr>> Args;
};

enum class StmtKind : uint8_t {
  Expr,
  Decl,
  If,
  While,
  DoWhile,
  For,
  Return,
  Break,
  Continue,
  Block,
  Switch,
  Case, ///< case label inside a switch body (IsDefault for default:)
  Empty,
};

/// One statement node.
struct Stmt {
  StmtKind K;
  SourceLoc Loc;
  std::unique_ptr<Expr> E;  ///< condition / expression / return value
  std::unique_ptr<Expr> E2; ///< for-init expression (when not a decl)
  std::unique_ptr<Expr> E3; ///< for-step
  std::unique_ptr<Stmt> S1; ///< then / body
  std::unique_ptr<Stmt> S2; ///< else
  std::vector<std::unique_ptr<Stmt>> Body; ///< block / switch body
  std::vector<VarDecl *> Decls;            ///< decl statement
  int64_t CaseValue = 0;
  bool IsDefault = false;
};

/// One function.
struct FuncDecl {
  std::string Name;
  CTypeRef Ty = nullptr; ///< Func type
  SourceLoc Loc;
  std::vector<VarDecl *> Params;
  std::unique_ptr<Stmt> Body; ///< null = prototype only
  bool Defined = false;
};

/// A parsed translation unit.
struct TranslationUnit {
  TypeContext Types;
  std::vector<std::unique_ptr<VarDecl>> AllVars; ///< owns every VarDecl
  std::vector<std::unique_ptr<FuncDecl>> Functions;
  std::vector<VarDecl *> Globals; ///< subset of AllVars

  /// String literals become anonymous globals at lowering; the parser
  /// assigns each literal an index into this table.
  std::vector<std::string> StringPool;

  FuncDecl *findFunction(const std::string &Name) {
    for (auto &F : Functions)
      if (F->Name == Name)
        return F.get();
    return nullptr;
  }
};

/// Parses (and type-checks) \p Source. Returns nullptr when \p Diags has
/// errors.
std::unique_ptr<TranslationUnit> parse(const std::string &Source,
                                       DiagnosticEngine &Diags);

} // namespace minic
} // namespace omni

#endif // OMNI_FRONTEND_AST_H
