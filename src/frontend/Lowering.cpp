//===- frontend/Lowering.cpp ----------------------------------------------===//

#include "frontend/Lowering.h"

#include "ir/IRBuilder.h"
#include "support/Format.h"

#include <cassert>
#include <cstring>
#include <map>
#include <optional>

using namespace omni;
using namespace omni::minic;
using ir::IRBuilder;
using ir::MemWidth;
using ir::Op;
using ir::Value;

namespace {

/// Name of the anonymous global holding string-pool entry \p Idx.
std::string strName(size_t Idx) { return formatStr(".str.%zu", Idx); }

/// An lvalue address: exactly one of (register base), (global symbol),
/// (frame slot) plus a constant byte offset.
struct Addr {
  Value Base;
  std::string Sym;
  int Slot = -1;
  int64_t Off = 0;

  bool isFrame() const { return Slot >= 0; }
  bool isGlobal() const { return !Sym.empty(); }
};

class LoweringImpl {
public:
  LoweringImpl(TranslationUnit &TU, ir::Program &Out,
               DiagnosticEngine &Diags)
      : TU(TU), Out(Out), Diags(Diags) {}

  bool run();

private:
  void error(SourceLoc Loc, std::string Msg) {
    Diags.error(Loc, std::move(Msg));
  }

  // --- globals -------------------------------------------------------------
  void lowerGlobal(VarDecl *V);
  void emitStringPool();
  /// Evaluates a constant scalar initializer into \p Bytes at \p Offset,
  /// or records a pointer init. Returns false (with diagnostic) otherwise.
  bool evalConstInit(const Expr *E, CTypeRef Ty, ir::GlobalVar &G,
                     uint32_t Offset);
  std::optional<int64_t> evalConstInt(const Expr *E);
  std::optional<double> evalConstFloat(const Expr *E);

  // --- functions -----------------------------------------------------------
  void lowerFunction(FuncDecl *Fn);
  void lowerStmt(const Stmt *S);
  void lowerLocalDecl(VarDecl *V);

  /// Emits code for \p E and returns the value (invalid for void calls).
  Value genExpr(const Expr *E);
  /// Computes the address of lvalue \p E.
  Addr genAddr(const Expr *E);
  /// Materializes \p A into a single register value (for &x).
  Value materializeAddr(const Addr &A);
  Value genLoad(const Addr &A, CTypeRef Ty);
  void genStore(const Addr &A, CTypeRef Ty, Value V);
  /// Emits control flow for a condition: branch to TB when true else FB.
  void genCond(const Expr *E, int TrueBlk, int FalseBlk);
  /// Emits a comparison branch for relational \p E (already checked).
  void genCmpBranch(const Expr *E, int TrueBlk, int FalseBlk);
  Value genBinary(const Expr *E);
  Value genCast(const Expr *E);
  Value genCall(const Expr *E);
  /// Converts \p V (of C type From) to C type To.
  Value convert(Value V, CTypeRef From, CTypeRef To);
  /// After storing to a narrow lvalue, the expression result is the
  /// truncated value.
  Value truncateForType(Value V, CTypeRef Ty);
  ir::Cond condFor(Tok Op, bool IsUnsigned);

  Value genIncDecStored(const Expr *E, bool WantOld);

  TranslationUnit &TU;
  ir::Program &Out;
  DiagnosticEngine &Diags;

  ir::Function *F = nullptr;
  std::unique_ptr<IRBuilder> B;
  std::map<const VarDecl *, Value> VarRegs;
  std::map<const VarDecl *, unsigned> VarSlots;
  std::vector<int> BreakTargets;
  std::vector<int> ContinueTargets;
};

//===----------------------------------------------------------------------===//
// Globals
//===----------------------------------------------------------------------===//

std::optional<int64_t> LoweringImpl::evalConstInt(const Expr *E) {
  if (!E)
    return std::nullopt;
  switch (E->K) {
  case ExprKind::IntLit:
    return E->IntVal;
  case ExprKind::Unary: {
    auto V = evalConstInt(E->L.get());
    if (!V)
      return std::nullopt;
    if (E->Op == Tok::Minus)
      return -*V;
    if (E->Op == Tok::Tilde)
      return ~*V;
    if (E->Op == Tok::Bang)
      return *V == 0;
    return std::nullopt;
  }
  case ExprKind::Binary: {
    auto A = evalConstInt(E->L.get()), Bv = evalConstInt(E->R.get());
    if (!A || !Bv)
      return std::nullopt;
    int32_t X = static_cast<int32_t>(*A), Y = static_cast<int32_t>(*Bv);
    switch (E->Op) {
    case Tok::Plus:
      return X + Y;
    case Tok::Minus:
      return X - Y;
    case Tok::Star:
      return X * Y;
    case Tok::Slash:
      return Y ? X / Y : std::optional<int64_t>();
    case Tok::Shl:
      return X << (Y & 31);
    case Tok::Shr:
      return X >> (Y & 31);
    case Tok::Amp:
      return X & Y;
    case Tok::Pipe:
      return X | Y;
    case Tok::Caret:
      return X ^ Y;
    default:
      return std::nullopt;
    }
  }
  case ExprKind::Cast: {
    if (isFloatType(E->L->Ty)) {
      auto FV = evalConstFloat(E->L.get());
      if (!FV || !isIntegerType(E->Ty))
        return std::nullopt;
      return static_cast<int64_t>(*FV);
    }
    auto V = evalConstInt(E->L.get());
    if (!V)
      return std::nullopt;
    switch (E->Ty->K) {
    case TypeKind::Char:
      return static_cast<int8_t>(*V);
    case TypeKind::UChar:
      return static_cast<uint8_t>(*V);
    case TypeKind::Short:
      return static_cast<int16_t>(*V);
    case TypeKind::UShort:
      return static_cast<uint16_t>(*V);
    default:
      return static_cast<int32_t>(*V);
    }
  }
  default:
    return std::nullopt;
  }
}

std::optional<double> LoweringImpl::evalConstFloat(const Expr *E) {
  if (!E)
    return std::nullopt;
  switch (E->K) {
  case ExprKind::FloatLit:
    return E->FloatVal;
  case ExprKind::IntLit:
    return static_cast<double>(E->IntVal);
  case ExprKind::Cast: {
    if (isFloatType(E->Ty)) {
      auto V = evalConstFloat(E->L.get());
      if (!V)
        return std::nullopt;
      return E->Ty->K == TypeKind::Float
                 ? static_cast<double>(static_cast<float>(*V))
                 : *V;
    }
    return std::nullopt;
  }
  case ExprKind::Unary:
    if (E->Op == Tok::Minus) {
      auto V = evalConstFloat(E->L.get());
      if (V)
        return -*V;
    }
    return std::nullopt;
  case ExprKind::Binary: {
    auto A = evalConstFloat(E->L.get()), Bv = evalConstFloat(E->R.get());
    if (!A || !Bv)
      return std::nullopt;
    switch (E->Op) {
    case Tok::Plus:
      return *A + *Bv;
    case Tok::Minus:
      return *A - *Bv;
    case Tok::Star:
      return *A * *Bv;
    case Tok::Slash:
      return *A / *Bv;
    default:
      return std::nullopt;
    }
  }
  default:
    return std::nullopt;
  }
}

bool LoweringImpl::evalConstInit(const Expr *E, CTypeRef Ty,
                                 ir::GlobalVar &G, uint32_t Offset) {
  uint32_t Size = typeSize(Ty);
  assert(Offset + Size <= G.Init.size());
  // Pointer-valued initializers.
  if (isPointerType(Ty)) {
    const Expr *Stripped = E;
    int64_t Extra = 0;
    while (Stripped->K == ExprKind::Cast)
      Stripped = Stripped->L.get();
    if (Stripped->K == ExprKind::StringLit) {
      G.PtrInits.push_back(
          {Offset, strName(static_cast<size_t>(Stripped->IntVal)), 0});
      return true;
    }
    if (Stripped->K == ExprKind::FuncRef) {
      G.PtrInits.push_back({Offset, Stripped->Fn->Name, 0});
      return true;
    }
    if (Stripped->K == ExprKind::AddrOf &&
        Stripped->L->K == ExprKind::VarRef && Stripped->L->Var->IsGlobal) {
      G.PtrInits.push_back(
          {Offset, Stripped->L->Var->Name, static_cast<int32_t>(Extra)});
      return true;
    }
    // Arrays decay: &arr / arr.
    if (Stripped->K == ExprKind::VarRef && Stripped->Var->IsGlobal &&
        Stripped->Var->Ty->K == TypeKind::Array) {
      G.PtrInits.push_back({Offset, Stripped->Var->Name, 0});
      return true;
    }
    if (auto V = evalConstInt(Stripped)) { // null etc.
      uint32_t U = static_cast<uint32_t>(*V);
      std::memcpy(&G.Init[Offset], &U, 4);
      return true;
    }
    error(E->Loc, "global pointer initializer is not a constant");
    return false;
  }
  if (isFloatType(Ty)) {
    auto V = evalConstFloat(E);
    if (!V) {
      error(E->Loc, "global initializer is not a constant");
      return false;
    }
    if (Ty->K == TypeKind::Float) {
      float FV = static_cast<float>(*V);
      std::memcpy(&G.Init[Offset], &FV, 4);
    } else {
      double DV = *V;
      std::memcpy(&G.Init[Offset], &DV, 8);
    }
    return true;
  }
  auto V = evalConstInt(E);
  if (!V) {
    error(E->Loc, "global initializer is not a constant");
    return false;
  }
  uint32_t U = static_cast<uint32_t>(*V);
  std::memcpy(&G.Init[Offset], &U, Size > 4 ? 4 : Size);
  return true;
}

void LoweringImpl::lowerGlobal(VarDecl *V) {
  ir::GlobalVar G;
  G.Name = V->Name;
  G.Size = typeSize(V->Ty);
  G.Align = typeAlign(V->Ty);
  if (G.Size == 0)
    G.Size = 1;

  bool HasInit = V->Init || !V->InitList.empty() || V->HasStrInit;
  if (HasInit) {
    G.Init.assign(G.Size, 0);
    if (V->HasStrInit) {
      size_t N = std::min<size_t>(V->StrInit.size(), G.Size);
      std::memcpy(G.Init.data(), V->StrInit.data(), N);
    } else if (!V->InitList.empty()) {
      if (V->Ty->K == TypeKind::Array) {
        CTypeRef ET = V->Ty->Elem;
        uint32_t Stride = typeSize(ET);
        if (V->InitList.size() > V->Ty->ArrayLen)
          error(V->Loc, "too many initializers for array");
        for (size_t I = 0;
             I < V->InitList.size() && I < V->Ty->ArrayLen; ++I)
          evalConstInit(V->InitList[I], ET, G,
                        static_cast<uint32_t>(I) * Stride);
      } else if (V->Ty->K == TypeKind::Struct) {
        const StructDef *SD = V->Ty->SD;
        if (V->InitList.size() > SD->Fields.size())
          error(V->Loc, "too many initializers for struct");
        for (size_t I = 0;
             I < V->InitList.size() && I < SD->Fields.size(); ++I)
          evalConstInit(V->InitList[I], SD->Fields[I].Ty, G,
                        SD->Fields[I].Offset);
      } else {
        error(V->Loc, "brace initializer on scalar global");
      }
    } else {
      evalConstInit(V->Init, V->Ty, G, 0);
    }
  }
  Out.Globals.push_back(std::move(G));
}

void LoweringImpl::emitStringPool() {
  for (size_t I = 0; I < TU.StringPool.size(); ++I) {
    ir::GlobalVar G;
    G.Name = strName(I);
    G.Size = static_cast<uint32_t>(TU.StringPool[I].size() + 1);
    G.Align = 1;
    G.Init.assign(TU.StringPool[I].begin(), TU.StringPool[I].end());
    G.Init.push_back(0);
    Out.Globals.push_back(std::move(G));
  }
}

//===----------------------------------------------------------------------===//
// Functions
//===----------------------------------------------------------------------===//

bool LoweringImpl::run() {
  size_t ErrorsBefore = Diags.errorCount();

  // Imports: declared-but-undefined functions.
  for (auto &Fn : TU.Functions)
    if (!Fn->Defined)
      Out.Imports.push_back(Fn->Name);

  for (VarDecl *G : TU.Globals)
    lowerGlobal(G);
  emitStringPool();

  for (auto &Fn : TU.Functions)
    if (Fn->Defined)
      lowerFunction(Fn.get());

  return Diags.errorCount() == ErrorsBefore;
}

void LoweringImpl::lowerFunction(FuncDecl *Fn) {
  Out.Functions.push_back(ir::Function());
  F = &Out.Functions.back();
  F->Name = Fn->Name;
  F->HasRet = !isVoidType(Fn->Ty->Ret);
  F->RetTy = irTypeOf(Fn->Ty->Ret);
  B = std::make_unique<IRBuilder>(*F);
  VarRegs.clear();
  VarSlots.clear();

  unsigned Entry = B->createBlock("entry");
  B->setInsertPoint(Entry);

  // Parameters: incoming values; address-taken ones spill to slots.
  for (VarDecl *P : Fn->Params) {
    ir::Type Ty = irTypeOf(P->Ty);
    Value In = F->newValue(Ty);
    F->ParamTypes.push_back(Ty);
    F->ParamValues.push_back(In);
    if (P->AddressTaken) {
      ir::FrameSlot Slot;
      Slot.Size = typeSize(P->Ty);
      Slot.Align = typeAlign(P->Ty);
      Slot.Name = P->Name;
      F->Slots.push_back(Slot);
      unsigned SlotId = static_cast<unsigned>(F->Slots.size() - 1);
      VarSlots[P] = SlotId;
      B->storeFrame(memWidthOf(P->Ty), SlotId, 0, In);
    } else {
      // Copy into a dedicated variable register (multi-def).
      Value Var = F->newValue(Ty);
      B->copyTo(Var, In);
      VarRegs[P] = Var;
    }
  }

  lowerStmt(Fn->Body.get());

  // Implicit return at the end of the function.
  if (!B->blockTerminated()) {
    if (F->HasRet) {
      Value Zero = F->RetTy == ir::Type::I32
                       ? B->constInt(0)
                       : B->constFp(0.0, F->RetTy);
      B->ret(Zero);
    } else {
      B->retVoid();
    }
  }
  // Any other unterminated blocks (e.g. after break) get returns too.
  for (unsigned BI = 0; BI < F->Blocks.size(); ++BI) {
    if (!F->Blocks[BI].hasTerminator()) {
      B->setInsertPoint(BI);
      if (F->HasRet) {
        Value Zero = F->RetTy == ir::Type::I32
                         ? B->constInt(0)
                         : B->constFp(0.0, F->RetTy);
        B->ret(Zero);
      } else {
        B->retVoid();
      }
    }
  }
}

void LoweringImpl::lowerLocalDecl(VarDecl *V) {
  bool NeedsSlot = V->AddressTaken || V->Ty->K == TypeKind::Array ||
                   V->Ty->K == TypeKind::Struct;
  if (NeedsSlot) {
    ir::FrameSlot Slot;
    Slot.Size = typeSize(V->Ty);
    Slot.Align = typeAlign(V->Ty);
    Slot.Name = V->Name;
    F->Slots.push_back(Slot);
    unsigned SlotId = static_cast<unsigned>(F->Slots.size() - 1);
    VarSlots[V] = SlotId;

    if (V->HasStrInit) {
      CTypeRef CharT = TU.Types.charTy();
      uint32_t Len = V->Ty->ArrayLen;
      for (uint32_t I = 0; I < Len; ++I) {
        char C = I < V->StrInit.size() ? V->StrInit[I] : '\0';
        Value CV = B->constInt(C);
        B->storeFrame(memWidthOf(CharT), SlotId, I, CV);
      }
    } else if (!V->InitList.empty()) {
      if (V->Ty->K == TypeKind::Array) {
        CTypeRef ET = V->Ty->Elem;
        uint32_t Stride = typeSize(ET);
        for (size_t I = 0; I < V->InitList.size(); ++I) {
          Value EV = genExpr(V->InitList[I]);
          B->storeFrame(memWidthOf(ET), SlotId,
                        static_cast<int64_t>(I) * Stride, EV);
        }
      } else {
        error(V->Loc, "brace initializer only supported on local arrays");
      }
    } else if (V->Init) {
      Value IV = genExpr(V->Init);
      B->storeFrame(memWidthOf(V->Ty), SlotId, 0, IV);
    }
    return;
  }
  Value Var = F->newValue(irTypeOf(V->Ty));
  VarRegs[V] = Var;
  if (V->Init) {
    Value IV = genExpr(V->Init);
    B->copyTo(Var, truncateForType(IV, V->Ty));
  }
}

void LoweringImpl::lowerStmt(const Stmt *S) {
  if (!S || B->blockTerminated())
    return;
  switch (S->K) {
  case StmtKind::Block:
    for (const auto &Child : S->Body) {
      if (B->blockTerminated())
        break; // unreachable code after return/break
      lowerStmt(Child.get());
    }
    return;
  case StmtKind::Decl:
    for (VarDecl *V : S->Decls)
      lowerLocalDecl(V);
    return;
  case StmtKind::Expr:
    if (S->E)
      genExpr(S->E.get());
    return;
  case StmtKind::Empty:
    return;
  case StmtKind::If: {
    unsigned Then = B->createBlock("then");
    unsigned Else = S->S2 ? B->createBlock("else") : 0;
    unsigned Join = B->createBlock("endif");
    if (!S->S2)
      Else = Join;
    genCond(S->E.get(), Then, Else);
    B->setInsertPoint(Then);
    lowerStmt(S->S1.get());
    if (!B->blockTerminated())
      B->jmp(Join);
    if (S->S2) {
      B->setInsertPoint(Else);
      lowerStmt(S->S2.get());
      if (!B->blockTerminated())
        B->jmp(Join);
    }
    B->setInsertPoint(Join);
    return;
  }
  case StmtKind::While: {
    unsigned Header = B->createBlock("while.header");
    unsigned Body = B->createBlock("while.body");
    unsigned Exit = B->createBlock("while.end");
    B->jmp(Header);
    B->setInsertPoint(Header);
    genCond(S->E.get(), Body, Exit);
    BreakTargets.push_back(Exit);
    ContinueTargets.push_back(Header);
    B->setInsertPoint(Body);
    lowerStmt(S->S1.get());
    if (!B->blockTerminated())
      B->jmp(Header);
    BreakTargets.pop_back();
    ContinueTargets.pop_back();
    B->setInsertPoint(Exit);
    return;
  }
  case StmtKind::DoWhile: {
    unsigned Body = B->createBlock("do.body");
    unsigned CondBlk = B->createBlock("do.cond");
    unsigned Exit = B->createBlock("do.end");
    B->jmp(Body);
    BreakTargets.push_back(Exit);
    ContinueTargets.push_back(CondBlk);
    B->setInsertPoint(Body);
    lowerStmt(S->S1.get());
    if (!B->blockTerminated())
      B->jmp(CondBlk);
    B->setInsertPoint(CondBlk);
    genCond(S->E.get(), Body, Exit);
    BreakTargets.pop_back();
    ContinueTargets.pop_back();
    B->setInsertPoint(Exit);
    return;
  }
  case StmtKind::For: {
    if (S->S2)
      lowerStmt(S->S2.get()); // init declaration
    else if (S->E2)
      genExpr(S->E2.get());
    unsigned Header = B->createBlock("for.header");
    unsigned Body = B->createBlock("for.body");
    unsigned Step = B->createBlock("for.step");
    unsigned Exit = B->createBlock("for.end");
    B->jmp(Header);
    B->setInsertPoint(Header);
    if (S->E)
      genCond(S->E.get(), Body, Exit);
    else
      B->jmp(Body);
    BreakTargets.push_back(Exit);
    ContinueTargets.push_back(Step);
    B->setInsertPoint(Body);
    lowerStmt(S->S1.get());
    if (!B->blockTerminated())
      B->jmp(Step);
    B->setInsertPoint(Step);
    if (S->E3)
      genExpr(S->E3.get());
    B->jmp(Header);
    BreakTargets.pop_back();
    ContinueTargets.pop_back();
    B->setInsertPoint(Exit);
    return;
  }
  case StmtKind::Return:
    if (S->E) {
      Value V = genExpr(S->E.get());
      B->ret(V);
    } else {
      B->retVoid();
    }
    return;
  case StmtKind::Break:
    if (!BreakTargets.empty())
      B->jmp(BreakTargets.back());
    return;
  case StmtKind::Continue:
    if (!ContinueTargets.empty())
      B->jmp(ContinueTargets.back());
    return;
  case StmtKind::Switch: {
    Value Subject = genExpr(S->E.get());
    // Copy: the dispatch chain reads it repeatedly.
    Value Subj = B->copy(Subject);
    unsigned Dispatch = B->insertBlock();
    unsigned Exit = B->createBlock("switch.end");

    // Scan the (block) body for top-level case labels; each starts a new
    // block. Non-case statements attach to the most recent case block.
    const Stmt *Body = S->S1.get();
    struct CaseInfo {
      int64_t Value;
      bool IsDefault;
      unsigned Blk;
    };
    std::vector<CaseInfo> Cases;
    std::vector<std::pair<unsigned, const Stmt *>> Pieces;
    unsigned CurBlk = 0;
    bool HaveBlk = false;
    for (const auto &Child : Body->Body) {
      if (Child->K == StmtKind::Case) {
        unsigned NewBlk = B->createBlock(Child->IsDefault ? "default"
                                                           : "case");
        // Fallthrough into NewBlk is emitted after the previous case's
        // body has been lowered (see the loop over Cases below).
        CurBlk = NewBlk;
        HaveBlk = true;
        Cases.push_back({Child->CaseValue, Child->IsDefault, NewBlk});
        continue;
      }
      if (!HaveBlk) {
        error(Child->Loc, "statement before first case label in switch");
        continue;
      }
      Pieces.push_back({CurBlk, Child.get()});
    }
    // Lower the case bodies. Pieces sharing a block run in order;
    // fallthrough to the next case block happens when the previous body
    // did not terminate.
    BreakTargets.push_back(Exit);
    for (size_t CI = 0; CI < Cases.size(); ++CI) {
      B->setInsertPoint(Cases[CI].Blk);
      for (auto &[Blk, Piece] : Pieces)
        if (Blk == Cases[CI].Blk)
          lowerStmt(Piece);
      if (!B->blockTerminated()) {
        if (CI + 1 < Cases.size())
          B->jmp(Cases[CI + 1].Blk);
        else
          B->jmp(Exit);
      }
    }
    BreakTargets.pop_back();

    // Dispatch chain.
    B->setInsertPoint(Dispatch);
    unsigned DefaultBlk = Exit;
    for (const CaseInfo &C : Cases)
      if (C.IsDefault)
        DefaultBlk = C.Blk;
    for (const CaseInfo &C : Cases) {
      if (C.IsDefault)
        continue;
      unsigned Next = B->createBlock("switch.test");
      B->brImm(ir::Cond::Eq, Subj, C.Value, C.Blk, Next);
      B->setInsertPoint(Next);
    }
    B->jmp(DefaultBlk);
    B->setInsertPoint(Exit);
    return;
  }
  case StmtKind::Case:
    error(S->Loc, "case label not directly inside a switch body");
    return;
  }
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

ir::Cond LoweringImpl::condFor(Tok Op, bool IsUnsigned) {
  switch (Op) {
  case Tok::EqEq:
    return ir::Cond::Eq;
  case Tok::NotEq:
    return ir::Cond::Ne;
  case Tok::Lt:
    return IsUnsigned ? ir::Cond::LtU : ir::Cond::Lt;
  case Tok::Le:
    return IsUnsigned ? ir::Cond::LeU : ir::Cond::Le;
  case Tok::Gt:
    return IsUnsigned ? ir::Cond::GtU : ir::Cond::Gt;
  case Tok::Ge:
    return IsUnsigned ? ir::Cond::GeU : ir::Cond::Ge;
  default:
    assert(false && "not a comparison");
    return ir::Cond::Eq;
  }
}

Addr LoweringImpl::genAddr(const Expr *E) {
  switch (E->K) {
  case ExprKind::VarRef: {
    const VarDecl *V = E->Var;
    Addr A;
    if (V->IsGlobal) {
      A.Sym = V->Name;
      return A;
    }
    auto It = VarSlots.find(V);
    assert(It != VarSlots.end() && "register variable has no address");
    A.Slot = static_cast<int>(It->second);
    return A;
  }
  case ExprKind::Deref: {
    Addr A;
    // Fold a constant offset: *(p + C) patterns come from subscripting.
    A.Base = genExpr(E->L.get());
    return A;
  }
  case ExprKind::Member: {
    Addr A = genAddr(E->L.get());
    A.Off += E->Field->Offset;
    return A;
  }
  case ExprKind::StringLit: {
    Addr A;
    A.Sym = strName(static_cast<size_t>(E->IntVal));
    return A;
  }
  default:
    error(E->Loc, "expression is not an lvalue");
    Addr A;
    A.Base = B->constInt(0);
    return A;
  }
}

Value LoweringImpl::materializeAddr(const Addr &A) {
  if (A.isFrame())
    return B->frameAddr(static_cast<unsigned>(A.Slot), A.Off);
  if (A.isGlobal())
    return B->addrOf(A.Sym, A.Off);
  if (A.Off != 0)
    return B->binaryImm(Op::Add, A.Base, A.Off);
  return A.Base;
}

Value LoweringImpl::genLoad(const Addr &A, CTypeRef Ty) {
  ir::Type RegTy = irTypeOf(Ty);
  MemWidth W = memWidthOf(Ty);
  bool Signed = isSignedIntType(Ty) || !isIntegerType(Ty);
  if (A.isFrame())
    return B->loadFrame(RegTy, W, Signed, static_cast<unsigned>(A.Slot),
                        A.Off);
  if (A.isGlobal())
    return B->loadGlobal(RegTy, W, Signed, A.Sym, A.Off);
  return B->load(RegTy, W, Signed, A.Base, A.Off);
}

void LoweringImpl::genStore(const Addr &A, CTypeRef Ty, Value V) {
  MemWidth W = memWidthOf(Ty);
  if (A.isFrame()) {
    B->storeFrame(W, static_cast<unsigned>(A.Slot), A.Off, V);
    return;
  }
  if (A.isGlobal()) {
    B->storeGlobal(W, A.Sym, A.Off, V);
    return;
  }
  B->store(W, A.Base, A.Off, V);
}

Value LoweringImpl::truncateForType(Value V, CTypeRef Ty) {
  switch (Ty->K) {
  case TypeKind::Char:
    return B->unary(Op::SignExt8, V, ir::Type::I32);
  case TypeKind::UChar:
    return B->unary(Op::ZeroExt8, V, ir::Type::I32);
  case TypeKind::Short:
    return B->unary(Op::SignExt16, V, ir::Type::I32);
  case TypeKind::UShort:
    return B->unary(Op::ZeroExt16, V, ir::Type::I32);
  default:
    return V;
  }
}

Value LoweringImpl::convert(Value V, CTypeRef From, CTypeRef To) {
  if (typesEqual(From, To))
    return V;
  ir::Type FT = irTypeOf(From), TT = irTypeOf(To);
  // int-ish <-> int-ish (includes pointers).
  if (FT == ir::Type::I32 && TT == ir::Type::I32)
    return truncateForType(V, To);
  if (FT == ir::Type::I32) {
    // int -> fp. (Unsigned sources are converted as signed; see DESIGN.md
    // notes on MiniC deviations.)
    return B->unary(Op::IntToFp, V, TT);
  }
  if (TT == ir::Type::I32) {
    Value IV = B->unary(Op::FpToInt, V, ir::Type::I32);
    return truncateForType(IV, To);
  }
  if (FT == ir::Type::F32 && TT == ir::Type::F64)
    return B->unary(Op::FpExt, V, ir::Type::F64);
  if (FT == ir::Type::F64 && TT == ir::Type::F32)
    return B->unary(Op::FpTrunc, V, ir::Type::F32);
  return V;
}

void LoweringImpl::genCmpBranch(const Expr *E, int TrueBlk, int FalseBlk) {
  const Expr *L = E->L.get(), *R = E->R.get();
  bool IsUnsigned =
      L->Ty->K == TypeKind::UInt || isPointerType(L->Ty);
  ir::Cond Cc = condFor(E->Op, IsUnsigned);
  Value LV = genExpr(L);
  // Immediate comparison when the rhs is a literal.
  if (!isFloatType(L->Ty) && R->K == ExprKind::IntLit) {
    B->brImm(Cc, LV, R->IntVal, TrueBlk, FalseBlk);
    return;
  }
  Value RV = genExpr(R);
  B->br(Cc, LV, RV, TrueBlk, FalseBlk);
}

void LoweringImpl::genCond(const Expr *E, int TrueBlk, int FalseBlk) {
  if (!E) {
    B->jmp(TrueBlk);
    return;
  }
  switch (E->K) {
  case ExprKind::Binary:
    switch (E->Op) {
    case Tok::EqEq:
    case Tok::NotEq:
    case Tok::Lt:
    case Tok::Le:
    case Tok::Gt:
    case Tok::Ge:
      genCmpBranch(E, TrueBlk, FalseBlk);
      return;
    case Tok::AmpAmp: {
      unsigned Mid = B->createBlock("and.rhs");
      genCond(E->L.get(), Mid, FalseBlk);
      B->setInsertPoint(Mid);
      genCond(E->R.get(), TrueBlk, FalseBlk);
      return;
    }
    case Tok::PipePipe: {
      unsigned Mid = B->createBlock("or.rhs");
      genCond(E->L.get(), TrueBlk, Mid);
      B->setInsertPoint(Mid);
      genCond(E->R.get(), TrueBlk, FalseBlk);
      return;
    }
    default:
      break;
    }
    break;
  case ExprKind::Unary:
    if (E->Op == Tok::Bang) {
      genCond(E->L.get(), FalseBlk, TrueBlk);
      return;
    }
    break;
  default:
    break;
  }
  // Generic: compare against zero.
  Value V = genExpr(E);
  if (isFloatType(E->Ty)) {
    Value Zero = B->constFp(0.0, irTypeOf(E->Ty));
    B->br(ir::Cond::Ne, V, Zero, TrueBlk, FalseBlk);
  } else {
    B->brImm(ir::Cond::Ne, V, 0, TrueBlk, FalseBlk);
  }
}

Value LoweringImpl::genBinary(const Expr *E) {
  Tok OpTok = E->Op;
  const Expr *L = E->L.get(), *R = E->R.get();

  // Short-circuit logical operators produce 0/1 through control flow.
  if (OpTok == Tok::AmpAmp || OpTok == Tok::PipePipe) {
    Value Result = F->newValue(ir::Type::I32);
    unsigned TB = B->createBlock("bool.true");
    unsigned FB = B->createBlock("bool.false");
    unsigned Join = B->createBlock("bool.end");
    genCond(E, TB, FB);
    B->setInsertPoint(TB);
    B->copyTo(Result, B->constInt(1));
    B->jmp(Join);
    B->setInsertPoint(FB);
    B->copyTo(Result, B->constInt(0));
    B->jmp(Join);
    B->setInsertPoint(Join);
    return Result;
  }

  // Comparisons as values.
  if (OpTok == Tok::EqEq || OpTok == Tok::NotEq || OpTok == Tok::Lt ||
      OpTok == Tok::Le || OpTok == Tok::Gt || OpTok == Tok::Ge) {
    bool IsUnsigned = L->Ty->K == TypeKind::UInt || isPointerType(L->Ty);
    ir::Cond Cc = condFor(OpTok, IsUnsigned);
    Value LV = genExpr(L);
    if (!isFloatType(L->Ty) && R->K == ExprKind::IntLit)
      return B->cmpImm(Cc, LV, R->IntVal);
    Value RV = genExpr(R);
    return B->cmp(Cc, LV, RV);
  }

  // Pointer arithmetic.
  if (isPointerType(E->Ty) &&
      (OpTok == Tok::Plus || OpTok == Tok::Minus)) {
    Value P = genExpr(L);
    uint32_t Scale = typeSize(L->Ty->Pointee);
    if (R->K == ExprKind::IntLit) {
      int64_t Delta = R->IntVal * static_cast<int64_t>(Scale);
      return B->binaryImm(OpTok == Tok::Plus ? Op::Add : Op::Sub, P,
                          Delta);
    }
    Value Idx = genExpr(R);
    Value Scaled =
        Scale == 1 ? Idx : B->binaryImm(Op::Mul, Idx, Scale);
    return B->binary(OpTok == Tok::Plus ? Op::Add : Op::Sub, P, Scaled);
  }
  // Pointer difference.
  if (OpTok == Tok::Minus && isPointerType(L->Ty) &&
      isPointerType(R->Ty)) {
    Value LV = genExpr(L);
    Value RV = genExpr(R);
    Value Diff = B->binary(Op::Sub, LV, RV);
    uint32_t Scale = typeSize(L->Ty->Pointee);
    if (Scale == 1)
      return Diff;
    return B->binaryImm(Op::Div, Diff, Scale);
  }

  bool IsUnsigned = E->Ty->K == TypeKind::UInt;
  bool LhsUnsigned = L->Ty->K == TypeKind::UInt;
  Op K;
  switch (OpTok) {
  case Tok::Plus:
    K = isFloatType(E->Ty) ? Op::FAdd : Op::Add;
    break;
  case Tok::Minus:
    K = isFloatType(E->Ty) ? Op::FSub : Op::Sub;
    break;
  case Tok::Star:
    K = isFloatType(E->Ty) ? Op::FMul : Op::Mul;
    break;
  case Tok::Slash:
    K = isFloatType(E->Ty) ? Op::FDiv : (IsUnsigned ? Op::DivU : Op::Div);
    break;
  case Tok::Percent:
    K = IsUnsigned ? Op::RemU : Op::Rem;
    break;
  case Tok::Amp:
    K = Op::And;
    break;
  case Tok::Pipe:
    K = Op::Or;
    break;
  case Tok::Caret:
    K = Op::Xor;
    break;
  case Tok::Shl:
    K = Op::Shl;
    break;
  case Tok::Shr:
    K = LhsUnsigned ? Op::ShrL : Op::ShrA;
    break;
  default:
    assert(false && "unhandled binary operator");
    K = Op::Add;
    break;
  }
  Value LV = genExpr(L);
  if (!isFloatType(E->Ty) && R->K == ExprKind::IntLit)
    return B->binaryImm(K, LV, R->IntVal);
  Value RV = genExpr(R);
  return B->binary(K, LV, RV);
}

Value LoweringImpl::genCast(const Expr *E) {
  const Expr *Inner = E->L.get();
  // Array/function decay casts.
  if (Inner->Ty->K == TypeKind::Array) {
    Addr A = genAddr(Inner);
    return materializeAddr(A);
  }
  if (Inner->Ty->K == TypeKind::Func) {
    assert(Inner->K == ExprKind::FuncRef);
    return B->addrOf(Inner->Fn->Name); // code symbol; resolves to index
  }
  Value V = genExpr(Inner);
  if (isVoidType(E->Ty))
    return Value();
  return convert(V, Inner->Ty, E->Ty);
}

Value LoweringImpl::genCall(const Expr *E) {
  const Expr *Callee = E->L.get();
  bool HasRet = !isVoidType(E->Ty);
  ir::Type RetTy = irTypeOf(E->Ty);
  std::vector<Value> Args;
  for (const auto &A : E->Args)
    Args.push_back(genExpr(A.get()));

  if (Callee->K == ExprKind::FuncRef) {
    bool IsImport = !Callee->Fn->Defined;
    return B->call(Callee->Fn->Name, IsImport, std::move(Args), HasRet,
                   RetTy);
  }
  Value Fn = genExpr(Callee);
  return B->callIndirect(Fn, std::move(Args), HasRet, RetTy);
}

Value LoweringImpl::genIncDecStored(const Expr *E, bool WantOld) {
  const Expr *LV = E->L.get();
  int64_t Delta = 1;
  if (isPointerType(LV->Ty))
    Delta = typeSize(LV->Ty->Pointee);
  bool IsFp = isFloatType(LV->Ty);
  Op AddOp = E->Op == Tok::PlusPlus ? (IsFp ? Op::FAdd : Op::Add)
                                    : (IsFp ? Op::FSub : Op::Sub);

  // Register variable fast path.
  if (LV->K == ExprKind::VarRef && VarRegs.count(LV->Var)) {
    Value Var = VarRegs[LV->Var];
    Value Old;
    if (WantOld)
      Old = B->copy(Var);
    Value New;
    if (IsFp) {
      Value One = B->constFp(1.0, irTypeOf(LV->Ty));
      New = B->binary(AddOp, Var, One);
    } else {
      New = B->binaryImm(AddOp, Var, Delta);
    }
    B->copyTo(Var, truncateForType(New, LV->Ty));
    return WantOld ? Old : Var;
  }

  Addr A = genAddr(LV);
  Value Old = genLoad(A, LV->Ty);
  Value New;
  if (IsFp) {
    Value One = B->constFp(1.0, irTypeOf(LV->Ty));
    New = B->binary(AddOp, Old, One);
  } else {
    New = B->binaryImm(AddOp, Old, Delta);
  }
  genStore(A, LV->Ty, New);
  return WantOld ? Old : truncateForType(New, LV->Ty);
}

Value LoweringImpl::genExpr(const Expr *E) {
  switch (E->K) {
  case ExprKind::IntLit:
    return B->constInt(E->IntVal);
  case ExprKind::FloatLit:
    return B->constFp(E->FloatVal, irTypeOf(E->Ty));
  case ExprKind::StringLit:
    return B->addrOf(strName(static_cast<size_t>(E->IntVal)));
  case ExprKind::VarRef: {
    auto It = VarRegs.find(E->Var);
    if (It != VarRegs.end())
      return It->second;
    if (E->Ty->K == TypeKind::Array || E->Ty->K == TypeKind::Struct)
      return materializeAddr(genAddr(E)); // aggregates decay
    return genLoad(genAddr(E), E->Ty);
  }
  case ExprKind::FuncRef:
    return B->addrOf(E->Fn->Name);
  case ExprKind::Deref:
  case ExprKind::Member: {
    if (E->Ty->K == TypeKind::Array || E->Ty->K == TypeKind::Struct)
      return materializeAddr(genAddr(E));
    Addr A = genAddr(E);
    return genLoad(A, E->Ty);
  }
  case ExprKind::AddrOf:
    return materializeAddr(genAddr(E->L.get()));
  case ExprKind::Unary: {
    Value V = genExpr(E->L.get());
    switch (E->Op) {
    case Tok::Minus:
      return B->unary(isFloatType(E->Ty) ? Op::FNeg : Op::Neg, V,
                      irTypeOf(E->Ty));
    case Tok::Tilde:
      return B->unary(Op::Not, V, ir::Type::I32);
    case Tok::Bang: {
      if (isFloatType(E->L->Ty)) {
        Value Zero = B->constFp(0.0, irTypeOf(E->L->Ty));
        return B->cmp(ir::Cond::Eq, V, Zero);
      }
      return B->cmpImm(ir::Cond::Eq, V, 0);
    }
    default:
      assert(false && "unhandled unary");
      return V;
    }
  }
  case ExprKind::Binary:
    return genBinary(E);
  case ExprKind::Assign: {
    const Expr *LV = E->L.get();
    Value RV = genExpr(E->R.get());
    if (LV->K == ExprKind::VarRef && VarRegs.count(LV->Var)) {
      Value Var = VarRegs[LV->Var];
      Value Tr = truncateForType(RV, LV->Ty);
      B->copyTo(Var, Tr);
      return Var;
    }
    Addr A = genAddr(LV);
    genStore(A, LV->Ty, RV);
    return truncateForType(RV, LV->Ty);
  }
  case ExprKind::CompoundAssign: {
    const Expr *LV = E->L.get();
    bool IsFp = isFloatType(LV->Ty);
    bool IsPtr = isPointerType(LV->Ty);
    bool IsUnsigned = LV->Ty->K == TypeKind::UInt ||
                      LV->Ty->K == TypeKind::UChar ||
                      LV->Ty->K == TypeKind::UShort;
    Op K;
    switch (E->Op) {
    case Tok::Plus:
      K = IsFp ? Op::FAdd : Op::Add;
      break;
    case Tok::Minus:
      K = IsFp ? Op::FSub : Op::Sub;
      break;
    case Tok::Star:
      K = IsFp ? Op::FMul : Op::Mul;
      break;
    case Tok::Slash:
      K = IsFp ? Op::FDiv : (IsUnsigned ? Op::DivU : Op::Div);
      break;
    case Tok::Percent:
      K = IsUnsigned ? Op::RemU : Op::Rem;
      break;
    case Tok::Amp:
      K = Op::And;
      break;
    case Tok::Pipe:
      K = Op::Or;
      break;
    case Tok::Caret:
      K = Op::Xor;
      break;
    case Tok::Shl:
      K = Op::Shl;
      break;
    case Tok::Shr:
      K = IsUnsigned ? Op::ShrL : Op::ShrA;
      break;
    default:
      assert(false);
      K = Op::Add;
      break;
    }

    // Fast path: register variable.
    if (LV->K == ExprKind::VarRef && VarRegs.count(LV->Var)) {
      Value Var = VarRegs[LV->Var];
      Value RHS = genExpr(E->R.get());
      Value Operand = RHS;
      if (IsFp && E->R->Ty != LV->Ty)
        Operand = convert(RHS, E->R->Ty, LV->Ty);
      if (IsPtr && (K == Op::Add || K == Op::Sub)) {
        uint32_t Scale = typeSize(LV->Ty->Pointee);
        if (Scale != 1)
          Operand = B->binaryImm(Op::Mul, Operand, Scale);
      }
      Value New = B->binary(K, Var, Operand);
      B->copyTo(Var, truncateForType(New, LV->Ty));
      return Var;
    }

    Addr A = genAddr(LV);
    Value Old = genLoad(A, LV->Ty);
    Value RHS = genExpr(E->R.get());
    Value Operand = RHS;
    if (IsFp && E->R->Ty != LV->Ty)
      Operand = convert(RHS, E->R->Ty, LV->Ty);
    if (IsPtr && (K == Op::Add || K == Op::Sub)) {
      uint32_t Scale = typeSize(LV->Ty->Pointee);
      if (Scale != 1)
        Operand = B->binaryImm(Op::Mul, Operand, Scale);
    }
    Value New = B->binary(K, Old, Operand);
    genStore(A, LV->Ty, New);
    return truncateForType(New, LV->Ty);
  }
  case ExprKind::IncDec:
    return genIncDecStored(E, E->IsPostfix);
  case ExprKind::Cond: {
    Value Result = F->newValue(irTypeOf(E->Ty));
    unsigned TB = B->createBlock("cond.true");
    unsigned FB = B->createBlock("cond.false");
    unsigned Join = B->createBlock("cond.end");
    genCond(E->C.get(), TB, FB);
    B->setInsertPoint(TB);
    Value TV = genExpr(E->L.get());
    B->copyTo(Result, TV);
    B->jmp(Join);
    B->setInsertPoint(FB);
    Value FV = genExpr(E->R.get());
    B->copyTo(Result, FV);
    B->jmp(Join);
    B->setInsertPoint(Join);
    return Result;
  }
  case ExprKind::Call:
    return genCall(E);
  case ExprKind::Cast:
    return genCast(E);
  case ExprKind::SizeOf:
    return B->constInt(E->IntVal);
  case ExprKind::Comma:
    genExpr(E->L.get());
    return genExpr(E->R.get());
  }
  assert(false && "unhandled expression kind");
  return Value();
}

} // namespace

bool omni::minic::lowerToIR(TranslationUnit &TU, ir::Program &Out,
                            DiagnosticEngine &Diags) {
  LoweringImpl Impl(TU, Out, Diags);
  return Impl.run();
}
