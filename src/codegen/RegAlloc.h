//===- codegen/RegAlloc.h - linear scan register allocation -----*- C++ -*-===//
///
/// \file
/// Linear-scan register allocation of IR virtual registers onto the OmniVM
/// register file (or, reused by the native backends, onto a target register
/// file). The number of allocatable registers is a parameter — Table 2 of
/// the paper sweeps the OmniVM register file size and this is the knob that
/// reproduces it.
///
//===----------------------------------------------------------------------===//
#ifndef OMNI_CODEGEN_REGALLOC_H
#define OMNI_CODEGEN_REGALLOC_H

#include "ir/IR.h"

#include <map>
#include <set>
#include <vector>

namespace omni {
namespace codegen {

/// Registers available to the allocator, per class. Caller-saved registers
/// are only given to intervals that do not span a call.
struct RegisterFile {
  std::vector<unsigned> IntCallerSaved;
  std::vector<unsigned> IntCalleeSaved;
  std::vector<unsigned> FpCallerSaved;
  std::vector<unsigned> FpCalleeSaved;
};

/// Where one virtual register lives.
struct Location {
  enum KindTy { Unassigned, Reg, Spill } Kind = Unassigned;
  unsigned RegNum = 0;   ///< physical register number
  unsigned SpillSlot = 0; ///< index into the spill area (slot size 8)
};

/// Result of allocation for one function.
struct Allocation {
  std::vector<Location> Locs; ///< indexed by virtual register id
  std::set<unsigned> UsedIntCalleeSaved;
  std::set<unsigned> UsedFpCalleeSaved;
  unsigned NumSpillSlots = 0; ///< each slot is 8 bytes
  bool HasCalls = false;
};

/// A linearized view of the function: block order and global instruction
/// numbering used both by the allocator and by the emitter.
struct LinearOrder {
  std::vector<int> BlockOrder;       ///< block indices, entry first
  std::vector<unsigned> BlockStart;  ///< first inst number of each block
  std::vector<unsigned> BlockEnd;    ///< one past last inst number
  unsigned NumInsts = 0;

  static LinearOrder compute(const ir::Function &F);
};

/// Runs linear scan over \p F with the given register file.
Allocation allocateRegisters(const ir::Function &F, const RegisterFile &RF,
                             const LinearOrder &Order);

} // namespace codegen
} // namespace omni

#endif // OMNI_CODEGEN_REGALLOC_H
