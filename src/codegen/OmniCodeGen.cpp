//===- codegen/OmniCodeGen.cpp ---------------------------------------------===//

#include "codegen/OmniCodeGen.h"

#include "codegen/RegAlloc.h"
#include "ir/Analysis.h"
#include "support/Format.h"

#include <bit>
#include <cassert>
#include <map>

using namespace omni;
using namespace omni::codegen;
using namespace omni::ir;
using vm::Instr;
using vm::Opcode;

namespace {

/// Where one call argument goes.
struct ArgSlot {
  bool InReg = true;
  unsigned Reg = 0;      ///< arg register number
  int32_t StackOff = 0;  ///< offset in the outgoing-args area
  bool IsFp = false;
  unsigned Bytes = 4;
};

/// Computes argument placement for a list of IR value types, mirroring the
/// OmniVM calling convention (r0..r3 / f0..f3, rest on the stack).
/// Returns the slots and sets \p StackBytes.
std::vector<ArgSlot> layoutArgs(const std::vector<Type> &Types,
                                uint32_t &StackBytes) {
  std::vector<ArgSlot> Slots;
  unsigned NextInt = 0, NextFp = 0;
  uint32_t Off = 0;
  for (Type T : Types) {
    ArgSlot S;
    S.IsFp = isFpType(T);
    S.Bytes = T == Type::F64 ? 8 : 4;
    if (S.IsFp && NextFp < NumFpArgRegs) {
      S.Reg = NextFp++;
    } else if (!S.IsFp && NextInt < NumIntArgRegs) {
      S.Reg = NextInt++;
    } else {
      S.InReg = false;
      Off = (Off + S.Bytes - 1) & ~(S.Bytes - 1);
      S.StackOff = static_cast<int32_t>(Off);
      Off += S.Bytes;
    }
    Slots.push_back(S);
  }
  StackBytes = (Off + 7) & ~7u;
  return Slots;
}

/// One pending register move for the parallel-move resolver.
struct PMove {
  unsigned DstReg;
  bool Fp = false;
  // Source: exactly one of these.
  bool SrcIsReg = false;
  unsigned SrcReg = 0;
  bool SrcIsFrameLoad = false; ///< load from sp+Off
  int32_t Off = 0;
  bool SrcIsF64 = true; ///< fp loads: width
};

class FunctionEmitter;

/// Emits one IR program into a vm::Module.
class ModuleEmitter {
public:
  ModuleEmitter(const Program &P, const CodeGenOptions &Opts,
                vm::Module &Out)
      : P(P), Opts(Opts), Out(Out) {}

  bool run(std::string &Error);

  uint32_t symbolFor(const std::string &Name) {
    auto It = SymbolIds.find(Name);
    if (It != SymbolIds.end())
      return It->second;
    vm::Symbol S;
    S.Name = Name;
    S.Global = true;
    Out.Symbols.push_back(S);
    uint32_t Id = static_cast<uint32_t>(Out.Symbols.size() - 1);
    SymbolIds[Name] = Id;
    return Id;
  }

  /// Returns the data symbol of an interned fp constant, creating it on
  /// first use.
  std::string fpConstSymbol(double V, bool IsF64);

  int importIndex(const std::string &Name) const {
    for (size_t I = 0; I < P.Imports.size(); ++I)
      if (P.Imports[I] == Name)
        return static_cast<int>(I);
    return -1;
  }

  const Program &P;
  const CodeGenOptions &Opts;
  vm::Module &Out;
  std::map<std::string, uint32_t> SymbolIds;
  std::map<std::pair<uint64_t, bool>, std::string> FpConsts;
  std::vector<std::pair<std::string, std::vector<uint8_t>>> FpConstData;
};

std::string ModuleEmitter::fpConstSymbol(double V, bool IsF64) {
  uint64_t Bits = IsF64 ? std::bit_cast<uint64_t>(V)
                        : std::bit_cast<uint32_t>(static_cast<float>(V));
  auto Key = std::make_pair(Bits, IsF64);
  auto It = FpConsts.find(Key);
  if (It != FpConsts.end())
    return It->second;
  std::string Name = formatStr(".fconst.%zu", FpConsts.size());
  FpConsts[Key] = Name;
  std::vector<uint8_t> Bytes;
  unsigned N = IsF64 ? 8 : 4;
  for (unsigned I = 0; I < N; ++I)
    Bytes.push_back(static_cast<uint8_t>(Bits >> (8 * I)));
  FpConstData.push_back({Name, std::move(Bytes)});
  return Name;
}

//===----------------------------------------------------------------------===//
// Function emission
//===----------------------------------------------------------------------===//

class FunctionEmitter {
public:
  FunctionEmitter(ModuleEmitter &ME, const Function &F)
      : ME(ME), F(F), Out(ME.Out) {}

  bool run(std::string &Error);

private:
  // --- emission primitives -------------------------------------------------
  uint32_t emit(Instr I) {
    Out.Code.push_back(I);
    return static_cast<uint32_t>(Out.Code.size() - 1);
  }
  /// Emits an instruction whose Imm must be relocated by &Sym.
  void emitWithSymbol(Instr I, const std::string &Sym, int32_t Addend) {
    vm::Reloc R;
    R.Kind = vm::Reloc::ImmValue;
    R.Offset = static_cast<uint32_t>(Out.Code.size());
    R.SymbolId = ME.symbolFor(Sym);
    R.Addend = Addend;
    Out.Relocs.push_back(R);
    emit(I);
  }

  // --- operand access ------------------------------------------------------
  int32_t spillOffset(unsigned Slot) const {
    return static_cast<int32_t>(SpillBase + 8 * Slot);
  }
  int32_t frameSlotOffset(unsigned SlotIdx) const {
    return static_cast<int32_t>(SlotOffsets[SlotIdx]);
  }

  /// Physical register holding \p V for reading; may load a spill into the
  /// given scratch register.
  unsigned useInt(const Value &V, unsigned Scratch) {
    const Location &L = Alloc.Locs[V.Id];
    if (L.Kind == Location::Reg)
      return L.RegNum;
    assert(L.Kind == Location::Spill && "unallocated value used");
    emit(vm::makeMemImm(Opcode::Lw, Scratch, vm::RegSp,
                        spillOffset(L.SpillSlot)));
    return Scratch;
  }
  unsigned useFp(const Value &V, unsigned Scratch) {
    const Location &L = Alloc.Locs[V.Id];
    if (L.Kind == Location::Reg)
      return L.RegNum;
    assert(L.Kind == Location::Spill && "unallocated value used");
    emit(vm::makeMemImm(V.Ty == Type::F64 ? Opcode::Lfd : Opcode::Lfs,
                        Scratch, vm::RegSp, spillOffset(L.SpillSlot)));
    return Scratch;
  }
  /// Register to compute \p V into; pair with finishDef.
  unsigned defReg(const Value &V, unsigned Scratch) const {
    const Location &L = Alloc.Locs[V.Id];
    return L.Kind == Location::Reg ? L.RegNum : Scratch;
  }
  void finishDef(const Value &V, unsigned Reg) {
    const Location &L = Alloc.Locs[V.Id];
    if (L.Kind != Location::Spill)
      return;
    Opcode Op = !isFpType(V.Ty) ? Opcode::Sw
                : V.Ty == Type::F64 ? Opcode::Sfd
                                    : Opcode::Sfs;
    emit(vm::makeMemImm(Op, Reg, vm::RegSp, spillOffset(L.SpillSlot)));
  }

  // --- structured emission -------------------------------------------------
  void emitPrologue();
  void emitEpilogueAndRet();
  void emitInst(const Inst &I);
  void emitBranch(const Inst &I, int NextBlockInLayout);
  void emitCall(const Inst &I);
  void emitCmpValue(const Inst &I);
  void emitMemAccess(const Inst &I);
  /// Resolves a set of parallel register moves (cycle-safe).
  void resolveMoves(std::vector<PMove> Moves);

  Opcode branchOpcode(Cond Cc, Type Ty, bool &SwapOperands);

  ModuleEmitter &ME;
  const Function &F;
  vm::Module &Out;

  LinearOrder Order;
  Allocation Alloc;
  uint32_t FuncBase = 0;

  // Frame layout (offsets from sp).
  uint32_t OutArgBytes = 0;
  uint32_t SpillBase = 0;
  std::vector<uint32_t> SlotOffsets;
  uint32_t SavedBase = 0;
  uint32_t RaOffset = 0;
  bool SaveRa = false;
  uint32_t FrameSize = 0;

  // Branch fixups: (code index, ir block) resolved after body emission.
  std::vector<std::pair<uint32_t, int>> Fixups;
  std::vector<uint32_t> BlockLabel; ///< ir block -> code index
};

Opcode FunctionEmitter::branchOpcode(Cond Cc, Type Ty, bool &Swap) {
  Swap = false;
  if (!isFpType(Ty)) {
    switch (Cc) {
    case Cond::Eq:
      return Opcode::Beq;
    case Cond::Ne:
      return Opcode::Bne;
    case Cond::Lt:
      return Opcode::Blt;
    case Cond::Le:
      return Opcode::Ble;
    case Cond::Gt:
      return Opcode::Bgt;
    case Cond::Ge:
      return Opcode::Bge;
    case Cond::LtU:
      return Opcode::Bltu;
    case Cond::LeU:
      return Opcode::Bleu;
    case Cond::GtU:
      return Opcode::Bgtu;
    case Cond::GeU:
      return Opcode::Bgeu;
    }
  }
  bool IsD = Ty == Type::F64;
  switch (Cc) {
  case Cond::Eq:
    return IsD ? Opcode::BfeqD : Opcode::BfeqS;
  case Cond::Ne:
    return IsD ? Opcode::BfneD : Opcode::BfneS;
  case Cond::Lt:
    return IsD ? Opcode::BfltD : Opcode::BfltS;
  case Cond::Le:
    return IsD ? Opcode::BfleD : Opcode::BfleS;
  case Cond::Gt:
    Swap = true;
    return IsD ? Opcode::BfltD : Opcode::BfltS;
  case Cond::Ge:
    Swap = true;
    return IsD ? Opcode::BfleD : Opcode::BfleS;
  default:
    assert(false && "unsigned fp compare");
    return Opcode::BfeqD;
  }
}

void FunctionEmitter::resolveMoves(std::vector<PMove> Moves) {
  // Drop no-op moves.
  for (size_t I = 0; I < Moves.size();) {
    if (Moves[I].SrcIsReg && Moves[I].SrcReg == Moves[I].DstReg)
      Moves.erase(Moves.begin() + I);
    else
      ++I;
  }
  auto EmitOne = [&](const PMove &M) {
    if (M.SrcIsReg) {
      emit(M.Fp ? vm::makeRR(Opcode::FMov, M.DstReg, M.SrcReg)
                : vm::makeMov(M.DstReg, M.SrcReg));
    } else if (M.SrcIsFrameLoad) {
      Opcode Op = M.Fp ? (M.SrcIsF64 ? Opcode::Lfd : Opcode::Lfs)
                       : Opcode::Lw;
      emit(vm::makeMemImm(Op, M.DstReg, vm::RegSp, M.Off));
    }
  };
  while (!Moves.empty()) {
    bool Progress = false;
    for (size_t I = 0; I < Moves.size(); ++I) {
      const PMove &M = Moves[I];
      // Safe to emit when no other pending move reads M.DstReg from the
      // same register class.
      bool Blocked = false;
      for (size_t J = 0; J < Moves.size(); ++J) {
        if (J == I)
          continue;
        const PMove &O = Moves[J];
        if (O.SrcIsReg && O.Fp == M.Fp && O.SrcReg == M.DstReg)
          Blocked = true;
      }
      if (!Blocked) {
        EmitOne(M);
        Moves.erase(Moves.begin() + I);
        Progress = true;
        break;
      }
    }
    if (Progress)
      continue;
    // Cycle: all remaining moves are reg-reg. Break it with a scratch.
    PMove &M = Moves.front();
    unsigned Scratch = M.Fp ? FpScratchA : ScratchA;
    emit(M.Fp ? vm::makeRR(Opcode::FMov, Scratch, M.SrcReg)
              : vm::makeMov(Scratch, M.SrcReg));
    // Redirect every read of M.SrcReg to the scratch copy.
    unsigned OldSrc = M.SrcReg;
    for (PMove &O : Moves)
      if (O.SrcIsReg && O.Fp == M.Fp && O.SrcReg == OldSrc)
        O.SrcReg = Scratch;
  }
}

bool FunctionEmitter::run(std::string &Error) {
  Order = LinearOrder::compute(F);

  // Register file: reserve sp/ra/2 scratch from the integer file and the
  // two fp scratches from the fp file.
  RegisterFile RF;
  unsigned IntAvail =
      ME.Opts.NumIntRegs >= 4 ? ME.Opts.NumIntRegs - 4 : 0;
  if (IntAvail > 12)
    IntAvail = 12;
  for (unsigned R = 0; R < IntAvail && R < 8; ++R)
    RF.IntCallerSaved.push_back(R);
  for (unsigned R = 8; R < IntAvail; ++R)
    RF.IntCalleeSaved.push_back(R);
  unsigned FpAvail = ME.Opts.NumFpRegs >= 2 ? ME.Opts.NumFpRegs - 2 : 0;
  if (FpAvail > 14)
    FpAvail = 14;
  for (unsigned R = 0; R < FpAvail && R < 8; ++R)
    RF.FpCallerSaved.push_back(R);
  for (unsigned R = 8; R < FpAvail; ++R)
    RF.FpCalleeSaved.push_back(R);
  if (RF.IntCallerSaved.empty() && RF.IntCalleeSaved.empty()) {
    Error = "register file too small";
    return false;
  }

  Alloc = allocateRegisters(F, RF, Order);

  // Outgoing argument area: maximum over all calls.
  OutArgBytes = 0;
  for (const Block &B : F.Blocks)
    for (const Inst &I : B.Insts)
      if (I.K == Op::Call) {
        std::vector<Type> ArgTys;
        for (const Value &A : I.Args)
          ArgTys.push_back(A.Ty);
        uint32_t Bytes = 0;
        layoutArgs(ArgTys, Bytes);
        if (Bytes > OutArgBytes)
          OutArgBytes = Bytes;
      }

  // Frame layout.
  SpillBase = OutArgBytes;
  uint32_t Off = SpillBase + 8 * Alloc.NumSpillSlots;
  SlotOffsets.clear();
  for (const FrameSlot &S : F.Slots) {
    uint32_t A = S.Align < 4 ? 4 : S.Align;
    Off = (Off + A - 1) & ~(A - 1);
    SlotOffsets.push_back(Off);
    Off += S.Size == 0 ? 4 : S.Size;
  }
  Off = (Off + 7) & ~7u;
  SavedBase = Off;
  Off += 4 * static_cast<uint32_t>(Alloc.UsedIntCalleeSaved.size());
  Off = (Off + 7) & ~7u;
  Off += 8 * static_cast<uint32_t>(Alloc.UsedFpCalleeSaved.size());
  SaveRa = Alloc.HasCalls;
  if (SaveRa) {
    RaOffset = Off;
    Off += 4;
  }
  FrameSize = (Off + 7) & ~7u;

  FuncBase = static_cast<uint32_t>(Out.Code.size());
  // Define the function symbol.
  uint32_t SymId = ME.symbolFor(F.Name);
  Out.Symbols[SymId].Kind = vm::Symbol::Code;
  Out.Symbols[SymId].Defined = true;
  Out.Symbols[SymId].Value = FuncBase;

  emitPrologue();

  BlockLabel.assign(F.Blocks.size(), 0);
  Fixups.clear();
  for (size_t LI = 0; LI < Order.BlockOrder.size(); ++LI) {
    int BIdx = Order.BlockOrder[LI];
    BlockLabel[BIdx] = static_cast<uint32_t>(Out.Code.size());
    int NextInLayout = LI + 1 < Order.BlockOrder.size()
                           ? Order.BlockOrder[LI + 1]
                           : -1;
    const Block &B = F.Blocks[BIdx];
    for (const Inst &I : B.Insts) {
      if (I.K == Op::Br || I.K == Op::Jmp)
        emitBranch(I, NextInLayout);
      else
        emitInst(I);
    }
  }

  // Patch branch targets.
  for (auto &[CodeIdx, BlockIdx] : Fixups)
    Out.Code[CodeIdx].Target = static_cast<int32_t>(BlockLabel[BlockIdx]);
  return true;
}

void FunctionEmitter::emitPrologue() {
  if (FrameSize)
    emit(vm::makeRRI(Opcode::Sub, vm::RegSp, vm::RegSp,
                     static_cast<int32_t>(FrameSize)));
  if (SaveRa)
    emit(vm::makeMemImm(Opcode::Sw, vm::RegRa, vm::RegSp,
                        static_cast<int32_t>(RaOffset)));
  uint32_t Off = SavedBase;
  for (unsigned R : Alloc.UsedIntCalleeSaved) {
    emit(vm::makeMemImm(Opcode::Sw, R, vm::RegSp,
                        static_cast<int32_t>(Off)));
    Off += 4;
  }
  Off = (Off + 7) & ~7u;
  for (unsigned R : Alloc.UsedFpCalleeSaved) {
    emit(vm::makeMemImm(Opcode::Sfd, R, vm::RegSp,
                        static_cast<int32_t>(Off)));
    Off += 8;
  }

  // Move incoming parameters to their allocated homes.
  std::vector<Type> ParamTys = F.ParamTypes;
  uint32_t StackBytes = 0;
  std::vector<ArgSlot> Slots = layoutArgs(ParamTys, StackBytes);
  std::vector<PMove> Moves;
  for (size_t I = 0; I < F.ParamValues.size(); ++I) {
    const Value &P = F.ParamValues[I];
    const Location &L = Alloc.Locs[P.Id];
    if (L.Kind == Location::Unassigned)
      continue; // unused parameter
    const ArgSlot &S = Slots[I];
    if (L.Kind == Location::Reg) {
      PMove M;
      M.DstReg = L.RegNum;
      M.Fp = S.IsFp;
      if (S.InReg) {
        M.SrcIsReg = true;
        M.SrcReg = S.Reg;
      } else {
        M.SrcIsFrameLoad = true;
        M.Off = static_cast<int32_t>(FrameSize) + S.StackOff;
        M.SrcIsF64 = P.Ty == Type::F64;
      }
      Moves.push_back(M);
    } else {
      // Spilled parameter: store (or copy) directly.
      if (S.InReg) {
        Opcode Op = !S.IsFp ? Opcode::Sw
                    : P.Ty == Type::F64 ? Opcode::Sfd
                                        : Opcode::Sfs;
        emit(vm::makeMemImm(Op, S.Reg, vm::RegSp,
                            spillOffset(L.SpillSlot)));
      } else {
        unsigned Scratch = S.IsFp ? FpScratchA : ScratchA;
        Opcode LOp = !S.IsFp ? Opcode::Lw
                     : P.Ty == Type::F64 ? Opcode::Lfd
                                         : Opcode::Lfs;
        Opcode SOp = !S.IsFp ? Opcode::Sw
                     : P.Ty == Type::F64 ? Opcode::Sfd
                                         : Opcode::Sfs;
        emit(vm::makeMemImm(LOp, Scratch, vm::RegSp,
                            static_cast<int32_t>(FrameSize) + S.StackOff));
        emit(vm::makeMemImm(SOp, Scratch, vm::RegSp,
                            spillOffset(L.SpillSlot)));
      }
    }
  }
  resolveMoves(std::move(Moves));
}

void FunctionEmitter::emitEpilogueAndRet() {
  uint32_t Off = SavedBase;
  for (unsigned R : Alloc.UsedIntCalleeSaved) {
    emit(vm::makeMemImm(Opcode::Lw, R, vm::RegSp,
                        static_cast<int32_t>(Off)));
    Off += 4;
  }
  Off = (Off + 7) & ~7u;
  for (unsigned R : Alloc.UsedFpCalleeSaved) {
    emit(vm::makeMemImm(Opcode::Lfd, R, vm::RegSp,
                        static_cast<int32_t>(Off)));
    Off += 8;
  }
  if (SaveRa)
    emit(vm::makeMemImm(Opcode::Lw, vm::RegRa, vm::RegSp,
                        static_cast<int32_t>(RaOffset)));
  if (FrameSize)
    emit(vm::makeRRI(Opcode::Add, vm::RegSp, vm::RegSp,
                     static_cast<int32_t>(FrameSize)));
  emit(vm::makeJumpReg(Opcode::Jr, vm::RegRa));
}

void FunctionEmitter::emitBranch(const Inst &I, int NextBlockInLayout) {
  if (I.K == Op::Jmp) {
    if (I.B1 != NextBlockInLayout) {
      uint32_t Idx = emit(vm::makeJump(Opcode::J, 0));
      Fixups.push_back({Idx, I.B1});
    }
    return;
  }
  assert(I.K == Op::Br);
  bool Swap = false;
  Opcode Op = branchOpcode(I.Cc, I.Ty, Swap);
  Instr BI;
  if (!isFpType(I.Ty)) {
    unsigned A = useInt(I.A, ScratchA);
    if (I.BIsImm) {
      BI = vm::makeBranchImm(Op, A, static_cast<int32_t>(I.Imm), 0);
    } else {
      unsigned Bv = useInt(I.B, ScratchB);
      BI = vm::makeBranch(Op, A, Bv, 0);
    }
  } else {
    unsigned A = useFp(I.A, FpScratchA);
    unsigned Bv = useFp(I.B, FpScratchB);
    if (Swap)
      std::swap(A, Bv);
    BI = vm::makeBranch(Op, A, Bv, 0);
    BI.UsesImm = false;
  }
  uint32_t Idx = emit(BI);
  Fixups.push_back({Idx, I.B1});
  if (I.B2 != NextBlockInLayout) {
    uint32_t JIdx = emit(vm::makeJump(Opcode::J, 0));
    Fixups.push_back({JIdx, I.B2});
  }
}

void FunctionEmitter::emitCmpValue(const Inst &I) {
  unsigned D = defReg(I.Dst, ScratchA);
  bool Swap = false;
  Opcode Op = branchOpcode(I.Cc, I.Ty, Swap);
  // bcc a, b, Ltrue; li d, 0; j Lend; Ltrue: li d, 1; Lend:
  // The operands are consumed by the branch before d is written, so
  // aliasing between d and the operands (or the scratch registers) is
  // harmless.
  uint32_t BIdx;
  if (!isFpType(I.Ty)) {
    unsigned A = useInt(I.A, ScratchA);
    if (I.BIsImm) {
      BIdx = emit(vm::makeBranchImm(Op, A, static_cast<int32_t>(I.Imm), 0));
    } else {
      unsigned Bv = useInt(I.B, ScratchB);
      BIdx = emit(vm::makeBranch(Op, A, Bv, 0));
    }
  } else {
    unsigned A = useFp(I.A, FpScratchA);
    unsigned Bv = useFp(I.B, FpScratchB);
    if (Swap)
      std::swap(A, Bv);
    BIdx = emit(vm::makeBranch(Op, A, Bv, 0));
  }
  emit(vm::makeLi(D, 0));
  uint32_t JIdx = emit(vm::makeJump(Opcode::J, 0));
  Out.Code[BIdx].Target = static_cast<int32_t>(Out.Code.size());
  emit(vm::makeLi(D, 1));
  Out.Code[JIdx].Target = static_cast<int32_t>(Out.Code.size());
  finishDef(I.Dst, D);
}

void FunctionEmitter::emitMemAccess(const Inst &I) {
  bool IsLoad = I.K == Op::Load;
  Opcode Op = Opcode::Lw;
  switch (I.Width) {
  case MemWidth::W8:
    Op = IsLoad ? (I.SignedLoad ? Opcode::Lb : Opcode::Lbu) : Opcode::Sb;
    break;
  case MemWidth::W16:
    Op = IsLoad ? (I.SignedLoad ? Opcode::Lh : Opcode::Lhu) : Opcode::Sh;
    break;
  case MemWidth::W32:
    Op = IsLoad ? Opcode::Lw : Opcode::Sw;
    break;
  case MemWidth::F32:
    Op = IsLoad ? Opcode::Lfs : Opcode::Sfs;
    break;
  case MemWidth::F64:
    Op = IsLoad ? Opcode::Lfd : Opcode::Sfd;
    break;
  }
  bool FpVal = I.Width == MemWidth::F32 || I.Width == MemWidth::F64;

  unsigned ValueReg;
  if (IsLoad) {
    ValueReg = FpVal ? defReg(I.Dst, FpScratchA) : defReg(I.Dst, ScratchA);
  } else {
    ValueReg = FpVal ? useFp(I.B, FpScratchA) : useInt(I.B, ScratchA);
  }

  Instr MI;
  if (I.FrameRel) {
    MI = vm::makeMemImm(Op, ValueReg, vm::RegSp,
                        frameSlotOffset(static_cast<unsigned>(I.Imm2)) +
                            static_cast<int32_t>(I.Imm));
    emit(MI);
  } else if (!I.Sym.empty()) {
    MI = vm::makeMemAbs(Op, ValueReg, 0);
    MI.Imm = static_cast<int32_t>(I.Imm);
    emitWithSymbol(MI, I.Sym, 0);
  } else if (IsLoad && !I.BIsImm && I.B.isValid()) {
    // Indexed load (OmniVM reg+reg addressing mode).
    unsigned Base = useInt(I.A, ScratchB);
    unsigned Index = useInt(I.B, ScratchA);
    MI = vm::makeMemIdx(Op, ValueReg, Base, Index);
    emit(MI);
  } else {
    unsigned Base = useInt(I.A, ScratchB);
    MI = vm::makeMemImm(Op, ValueReg, Base, static_cast<int32_t>(I.Imm));
    emit(MI);
  }
  if (IsLoad)
    finishDef(I.Dst, ValueReg);
}

void FunctionEmitter::emitCall(const Inst &I) {
  std::vector<Type> ArgTys;
  for (const Value &A : I.Args)
    ArgTys.push_back(A.Ty);
  uint32_t StackBytes = 0;
  std::vector<ArgSlot> Slots = layoutArgs(ArgTys, StackBytes);

  // Indirect target first (before arg registers are clobbered).
  bool Indirect = I.Sym.empty();
  if (Indirect) {
    unsigned T = useInt(I.A, ScratchB);
    if (T != ScratchB)
      emit(vm::makeMov(ScratchB, T));
  }

  // Stack arguments.
  for (size_t AI = 0; AI < I.Args.size(); ++AI) {
    const ArgSlot &S = Slots[AI];
    if (S.InReg)
      continue;
    const Value &V = I.Args[AI];
    if (S.IsFp) {
      unsigned R = useFp(V, FpScratchA);
      emit(vm::makeMemImm(V.Ty == Type::F64 ? Opcode::Sfd : Opcode::Sfs, R,
                          vm::RegSp, S.StackOff));
    } else {
      unsigned R = useInt(V, ScratchA);
      emit(vm::makeMemImm(Opcode::Sw, R, vm::RegSp, S.StackOff));
    }
  }

  // Register arguments as a parallel move.
  std::vector<PMove> Moves;
  for (size_t AI = 0; AI < I.Args.size(); ++AI) {
    const ArgSlot &S = Slots[AI];
    if (!S.InReg)
      continue;
    const Value &V = I.Args[AI];
    const Location &L = Alloc.Locs[V.Id];
    PMove M;
    M.DstReg = S.Reg;
    M.Fp = S.IsFp;
    if (L.Kind == Location::Reg) {
      M.SrcIsReg = true;
      M.SrcReg = L.RegNum;
    } else {
      M.SrcIsFrameLoad = true;
      M.Off = spillOffset(L.SpillSlot);
      M.SrcIsF64 = V.Ty == Type::F64;
    }
    Moves.push_back(M);
  }
  resolveMoves(std::move(Moves));

  // The transfer itself.
  if (I.IsImportCall) {
    int Idx = ME.importIndex(I.Sym);
    assert(Idx >= 0 && "import not registered");
    emit(vm::makeHCall(Idx));
  } else if (!Indirect) {
    Instr J = vm::makeJump(Opcode::Jal, 0);
    vm::Reloc R;
    R.Kind = vm::Reloc::CodeTarget;
    R.Offset = static_cast<uint32_t>(Out.Code.size());
    R.SymbolId = ME.symbolFor(I.Sym);
    R.Addend = 0;
    Out.Relocs.push_back(R);
    emit(J);
  } else {
    emit(vm::makeJumpReg(Opcode::Jalr, ScratchB));
  }

  // Result.
  if (I.hasDst()) {
    const Location &L = Alloc.Locs[I.Dst.Id];
    if (L.Kind == Location::Reg) {
      if (isFpType(I.Dst.Ty)) {
        if (L.RegNum != 0)
          emit(vm::makeRR(Opcode::FMov, L.RegNum, 0));
      } else if (L.RegNum != 0) {
        emit(vm::makeMov(L.RegNum, 0));
      }
    } else if (L.Kind == Location::Spill) {
      Opcode Op = !isFpType(I.Dst.Ty) ? Opcode::Sw
                  : I.Dst.Ty == Type::F64 ? Opcode::Sfd
                                          : Opcode::Sfs;
      emit(vm::makeMemImm(Op, 0, vm::RegSp, spillOffset(L.SpillSlot)));
    }
  }
}

void FunctionEmitter::emitInst(const Inst &I) {
  switch (I.K) {
  case Op::ConstInt: {
    unsigned D = defReg(I.Dst, ScratchA);
    emit(vm::makeLi(D, static_cast<int32_t>(I.Imm)));
    finishDef(I.Dst, D);
    return;
  }
  case Op::ConstFp: {
    unsigned D = defReg(I.Dst, FpScratchA);
    bool IsF64 = I.Dst.Ty == Type::F64;
    std::string Sym = ME.fpConstSymbol(I.FImm, IsF64);
    Instr MI = vm::makeMemAbs(IsF64 ? Opcode::Lfd : Opcode::Lfs, D, 0);
    emitWithSymbol(MI, Sym, 0);
    finishDef(I.Dst, D);
    return;
  }
  case Op::AddrOf: {
    unsigned D = defReg(I.Dst, ScratchA);
    Instr LI = vm::makeLi(D, 0);
    emitWithSymbol(LI, I.Sym, static_cast<int32_t>(I.Imm));
    finishDef(I.Dst, D);
    return;
  }
  case Op::FrameAddr: {
    unsigned D = defReg(I.Dst, ScratchA);
    emit(vm::makeRRI(Opcode::Add, D, vm::RegSp,
                     frameSlotOffset(static_cast<unsigned>(I.Imm2)) +
                         static_cast<int32_t>(I.Imm)));
    finishDef(I.Dst, D);
    return;
  }
  case Op::Copy: {
    if (!isFpType(I.Dst.Ty)) {
      unsigned S = useInt(I.A, ScratchA);
      unsigned D = defReg(I.Dst, ScratchA);
      if (S != D)
        emit(vm::makeMov(D, S));
      finishDef(I.Dst, D);
    } else {
      unsigned S = useFp(I.A, FpScratchA);
      unsigned D = defReg(I.Dst, FpScratchA);
      if (S != D)
        emit(vm::makeRR(Opcode::FMov, D, S));
      finishDef(I.Dst, D);
    }
    return;
  }
  case Op::Add:
  case Op::Sub:
  case Op::Mul:
  case Op::Div:
  case Op::DivU:
  case Op::Rem:
  case Op::RemU:
  case Op::And:
  case Op::Or:
  case Op::Xor:
  case Op::Shl:
  case Op::ShrL:
  case Op::ShrA: {
    Opcode Op2;
    switch (I.K) {
    case Op::Add:
      Op2 = Opcode::Add;
      break;
    case Op::Sub:
      Op2 = Opcode::Sub;
      break;
    case Op::Mul:
      Op2 = Opcode::Mul;
      break;
    case Op::Div:
      Op2 = Opcode::Div;
      break;
    case Op::DivU:
      Op2 = Opcode::DivU;
      break;
    case Op::Rem:
      Op2 = Opcode::Rem;
      break;
    case Op::RemU:
      Op2 = Opcode::RemU;
      break;
    case Op::And:
      Op2 = Opcode::And;
      break;
    case Op::Or:
      Op2 = Opcode::Or;
      break;
    case Op::Xor:
      Op2 = Opcode::Xor;
      break;
    case Op::Shl:
      Op2 = Opcode::Sll;
      break;
    case Op::ShrL:
      Op2 = Opcode::Srl;
      break;
    default:
      Op2 = Opcode::Sra;
      break;
    }
    unsigned A = useInt(I.A, ScratchA);
    unsigned D = defReg(I.Dst, ScratchA);
    if (I.BIsImm) {
      Instr MI = vm::makeRRI(Op2, D, A, static_cast<int32_t>(I.Imm));
      emit(MI);
    } else {
      unsigned Bv = useInt(I.B, ScratchB);
      emit(vm::makeRRR(Op2, D, A, Bv));
    }
    finishDef(I.Dst, D);
    return;
  }
  case Op::Neg: {
    // No zero register on OmniVM: materialize 0 in a scratch and subtract.
    // A is read via ScratchB so ScratchA is always free to hold the zero
    // (sub reads it before any same-register write).
    unsigned A = useInt(I.A, ScratchB);
    unsigned D = defReg(I.Dst, ScratchA);
    emit(vm::makeLi(ScratchA, 0));
    emit(vm::makeRRR(Opcode::Sub, D, ScratchA, A));
    finishDef(I.Dst, D);
    return;
  }
  case Op::Not: {
    unsigned A = useInt(I.A, ScratchA);
    unsigned D = defReg(I.Dst, ScratchA);
    emit(vm::makeRRI(Opcode::Xor, D, A, -1));
    finishDef(I.Dst, D);
    return;
  }
  case Op::FAdd:
  case Op::FSub:
  case Op::FMul:
  case Op::FDiv: {
    bool IsD = I.Ty == Type::F64;
    Opcode Op2;
    switch (I.K) {
    case Op::FAdd:
      Op2 = IsD ? Opcode::FAddD : Opcode::FAddS;
      break;
    case Op::FSub:
      Op2 = IsD ? Opcode::FSubD : Opcode::FSubS;
      break;
    case Op::FMul:
      Op2 = IsD ? Opcode::FMulD : Opcode::FMulS;
      break;
    default:
      Op2 = IsD ? Opcode::FDivD : Opcode::FDivS;
      break;
    }
    unsigned A = useFp(I.A, FpScratchA);
    unsigned Bv = useFp(I.B, FpScratchB);
    unsigned D = defReg(I.Dst, FpScratchA);
    emit(vm::makeRRR(Op2, D, A, Bv));
    finishDef(I.Dst, D);
    return;
  }
  case Op::FNeg: {
    unsigned A = useFp(I.A, FpScratchA);
    unsigned D = defReg(I.Dst, FpScratchA);
    emit(vm::makeRR(I.Ty == Type::F64 ? Opcode::FNegD : Opcode::FNegS, D,
                    A));
    finishDef(I.Dst, D);
    return;
  }
  case Op::Cmp:
    emitCmpValue(I);
    return;
  case Op::SignExt8:
  case Op::SignExt16:
  case Op::ZeroExt8:
  case Op::ZeroExt16: {
    unsigned A = useInt(I.A, ScratchA);
    unsigned D = defReg(I.Dst, ScratchA);
    switch (I.K) {
    case Op::SignExt8:
      emit(vm::makeRRI(Opcode::Sll, D, A, 24));
      emit(vm::makeRRI(Opcode::Sra, D, D, 24));
      break;
    case Op::SignExt16:
      emit(vm::makeRRI(Opcode::Sll, D, A, 16));
      emit(vm::makeRRI(Opcode::Sra, D, D, 16));
      break;
    case Op::ZeroExt8:
      emit(vm::makeRRI(Opcode::And, D, A, 0xff));
      break;
    default:
      emit(vm::makeRRI(Opcode::And, D, A, 0xffff));
      break;
    }
    finishDef(I.Dst, D);
    return;
  }
  case Op::IntToFp: {
    unsigned A = useInt(I.A, ScratchA);
    unsigned D = defReg(I.Dst, FpScratchA);
    emit(vm::makeRR(I.Dst.Ty == Type::F64 ? Opcode::CvtWToD
                                          : Opcode::CvtWToS,
                    D, A));
    finishDef(I.Dst, D);
    return;
  }
  case Op::FpToInt: {
    unsigned A = useFp(I.A, FpScratchA);
    unsigned D = defReg(I.Dst, ScratchA);
    emit(vm::makeRR(I.Ty == Type::F64 ? Opcode::CvtDToW : Opcode::CvtSToW,
                    D, A));
    finishDef(I.Dst, D);
    return;
  }
  case Op::FpExt: {
    unsigned A = useFp(I.A, FpScratchA);
    unsigned D = defReg(I.Dst, FpScratchA);
    emit(vm::makeRR(Opcode::CvtSToD, D, A));
    finishDef(I.Dst, D);
    return;
  }
  case Op::FpTrunc: {
    unsigned A = useFp(I.A, FpScratchA);
    unsigned D = defReg(I.Dst, FpScratchA);
    emit(vm::makeRR(Opcode::CvtDToS, D, A));
    finishDef(I.Dst, D);
    return;
  }
  case Op::Load:
  case Op::Store:
    emitMemAccess(I);
    return;
  case Op::Call:
    emitCall(I);
    return;
  case Op::Ret: {
    if (I.A.isValid()) {
      const Location &L = Alloc.Locs[I.A.Id];
      if (isFpType(I.A.Ty)) {
        unsigned R = useFp(I.A, FpScratchA);
        if (R != 0)
          emit(vm::makeRR(Opcode::FMov, 0, R));
      } else {
        unsigned R = useInt(I.A, ScratchA);
        if (R != 0)
          emit(vm::makeMov(0, R));
      }
      (void)L;
    }
    emitEpilogueAndRet();
    return;
  }
  case Op::Br:
  case Op::Jmp:
    assert(false && "handled by emitBranch");
    return;
  }
  assert(false && "unhandled IR instruction");
}

//===----------------------------------------------------------------------===//
// Module assembly
//===----------------------------------------------------------------------===//

bool ModuleEmitter::run(std::string &Error) {
  Out = vm::Module();
  Out.Imports = P.Imports;

  for (const Function &F : P.Functions) {
    FunctionEmitter FE(*this, F);
    if (!FE.run(Error))
      return false;
  }

  // Data section: globals, then fp constants. Zero-only globals go to bss.
  auto Align = [&](uint32_t A) {
    while (Out.Data.size() % A)
      Out.Data.push_back(0);
  };
  uint32_t BssOff = 0;
  std::vector<std::pair<uint32_t, uint32_t>> BssSyms; // symbolId, offset
  for (const GlobalVar &G : P.Globals) {
    uint32_t SymId = symbolFor(G.Name);
    vm::Symbol &S = Out.Symbols[SymId];
    if (S.Defined) {
      Error = formatStr("duplicate global '%s'", G.Name.c_str());
      return false;
    }
    S.Kind = vm::Symbol::Data;
    S.Defined = true;
    if (G.Init.empty() && G.PtrInits.empty()) {
      uint32_t A = G.Align ? G.Align : 4;
      BssOff = (BssOff + A - 1) & ~(A - 1);
      BssSyms.push_back({SymId, BssOff});
      BssOff += G.Size ? G.Size : 1;
      continue;
    }
    Align(G.Align ? G.Align : 4);
    S.Value = static_cast<uint32_t>(Out.Data.size());
    std::vector<uint8_t> Bytes = G.Init;
    Bytes.resize(G.Size ? G.Size : 1, 0);
    for (const GlobalVar::PtrInit &PI : G.PtrInits) {
      vm::Reloc R;
      R.Kind = vm::Reloc::DataWord;
      R.Offset = S.Value + PI.Offset;
      R.SymbolId = symbolFor(PI.Sym);
      R.Addend = PI.Addend;
      Out.Relocs.push_back(R);
    }
    Out.Data.insert(Out.Data.end(), Bytes.begin(), Bytes.end());
  }
  for (auto &[Name, Bytes] : FpConstData) {
    Align(8);
    uint32_t SymId = symbolFor(Name);
    vm::Symbol &S = Out.Symbols[SymId];
    S.Kind = vm::Symbol::Data;
    S.Defined = true;
    S.Value = static_cast<uint32_t>(Out.Data.size());
    Out.Data.insert(Out.Data.end(), Bytes.begin(), Bytes.end());
  }
  // Bss symbols: values sit past the initialized data.
  uint32_t DataSize = static_cast<uint32_t>(Out.Data.size());
  for (auto &[SymId, Off] : BssSyms)
    Out.Symbols[SymId].Value = DataSize + Off;
  Out.BssSize = BssOff;

  // Sanity: every referenced symbol must be defined or be an import.
  for (const vm::Symbol &S : Out.Symbols) {
    if (!S.Defined && importIndex(S.Name) < 0 &&
        !P.findFunction(S.Name)) {
      Error = formatStr("undefined symbol '%s'", S.Name.c_str());
      return false;
    }
  }
  return true;
}

} // namespace

bool omni::codegen::generateOmniVM(const Program &P,
                                   const CodeGenOptions &Opts,
                                   vm::Module &Out, std::string &Error) {
  ModuleEmitter ME(P, Opts, Out);
  return ME.run(Error);
}
