//===- codegen/RegAlloc.cpp ------------------------------------------------===//

#include "codegen/RegAlloc.h"

#include "ir/Analysis.h"

#include <algorithm>
#include <cassert>

using namespace omni;
using namespace omni::codegen;
using namespace omni::ir;

LinearOrder LinearOrder::compute(const Function &F) {
  LinearOrder L;
  // Layout order: reverse post-order keeps loop bodies contiguous enough
  // for interval quality while guaranteeing entry-first.
  L.BlockOrder = computeRPO(F);
  L.BlockStart.assign(F.Blocks.size(), 0);
  L.BlockEnd.assign(F.Blocks.size(), 0);
  unsigned N = 0;
  for (int B : L.BlockOrder) {
    L.BlockStart[B] = N;
    N += static_cast<unsigned>(F.Blocks[B].Insts.size());
    L.BlockEnd[B] = N;
  }
  L.NumInsts = N;
  return L;
}

namespace {

struct Interval {
  unsigned VReg = 0;
  Type Ty = Type::I32;
  unsigned Start = ~0u; ///< 2*pos (use) or 2*pos+1 (def)
  unsigned End = 0;
  bool SpansCall = false;

  bool valid() const { return Start != ~0u; }
};

} // namespace

Allocation omni::codegen::allocateRegisters(const Function &F,
                                            const RegisterFile &RF,
                                            const LinearOrder &Order) {
  Allocation A;
  A.Locs.assign(F.NextValueId, Location());

  Liveness Live = Liveness::compute(F);

  // Build one conservative interval per virtual register.
  std::vector<Interval> Ivals(F.NextValueId);
  for (unsigned V = 0; V < F.NextValueId; ++V)
    Ivals[V].VReg = V;

  auto Extend = [&](const Value &V, unsigned Pos2) {
    Interval &I = Ivals[V.Id];
    I.Ty = V.Ty;
    if (Pos2 < I.Start)
      I.Start = Pos2;
    if (Pos2 > I.End)
      I.End = Pos2;
  };

  std::vector<unsigned> CallPositions;
  for (int B : Order.BlockOrder) {
    unsigned Pos = Order.BlockStart[B];
    // Live-in values span from the top of the block.
    for (unsigned V = 0; V < F.NextValueId; ++V)
      if (Live.isLiveIn(B, V)) {
        Interval &I = Ivals[V];
        unsigned P2 = 2 * Pos;
        if (P2 < I.Start)
          I.Start = P2;
        if (P2 > I.End)
          I.End = P2;
      }
    for (const Inst &I : F.Blocks[B].Insts) {
      forEachUse(I, [&](const Value &V) { Extend(V, 2 * Pos); });
      if (I.hasDst())
        Extend(I.Dst, 2 * Pos + 1);
      if (I.K == Op::Call)
        CallPositions.push_back(Pos);
      ++Pos;
    }
    // Live-out values span to the bottom of the block.
    unsigned EndPos = 2 * Order.BlockEnd[B] + 1;
    for (unsigned V = 0; V < F.NextValueId; ++V)
      if (Live.isLiveOut(B, V)) {
        Interval &I = Ivals[V];
        if (EndPos > I.End)
          I.End = EndPos;
        if (I.Start == ~0u)
          I.Start = 2 * Order.BlockStart[B];
      }
  }

  // Parameters are defined at entry.
  for (const Value &P : F.ParamValues)
    if (Ivals[P.Id].valid())
      Extend(P, 0);

  A.HasCalls = !CallPositions.empty();

  // Mark call-crossing intervals.
  for (Interval &I : Ivals) {
    if (!I.valid())
      continue;
    for (unsigned CP : CallPositions) {
      // The call's own def happens after the call; an interval that ends
      // exactly at the call's use position does not cross it.
      if (I.Start < 2 * CP && I.End > 2 * CP + 1) {
        I.SpansCall = true;
        break;
      }
    }
  }

  // Sort by start.
  std::vector<Interval *> Work;
  for (Interval &I : Ivals)
    if (I.valid())
      Work.push_back(&I);
  std::sort(Work.begin(), Work.end(), [](const Interval *X, const Interval *Y) {
    if (X->Start != Y->Start)
      return X->Start < Y->Start;
    return X->VReg < Y->VReg;
  });

  // Separate scans per register class.
  struct Pool {
    std::vector<unsigned> CallerFree, CalleeFree;
    std::vector<std::pair<Interval *, unsigned>> Active; // interval, reg
  };
  Pool IntPool{RF.IntCallerSaved, RF.IntCalleeSaved, {}};
  Pool FpPool{RF.FpCallerSaved, RF.FpCalleeSaved, {}};
  // Reverse so pop_back hands out the first-listed registers first.
  std::reverse(IntPool.CallerFree.begin(), IntPool.CallerFree.end());
  std::reverse(IntPool.CalleeFree.begin(), IntPool.CalleeFree.end());
  std::reverse(FpPool.CallerFree.begin(), FpPool.CallerFree.end());
  std::reverse(FpPool.CalleeFree.begin(), FpPool.CalleeFree.end());

  auto IsCalleeSaved = [&](unsigned R, bool Fp) {
    const std::vector<unsigned> &S =
        Fp ? RF.FpCalleeSaved : RF.IntCalleeSaved;
    return std::find(S.begin(), S.end(), R) != S.end();
  };

  unsigned NextSpill = 0;
  auto ScanOne = [&](Interval *Cur, Pool &P, bool Fp) {
    // Expire old intervals.
    for (size_t I = 0; I < P.Active.size();) {
      if (P.Active[I].first->End < Cur->Start) {
        unsigned R = P.Active[I].second;
        if (IsCalleeSaved(R, Fp))
          P.CalleeFree.push_back(R);
        else
          P.CallerFree.push_back(R);
        P.Active.erase(P.Active.begin() + I);
      } else {
        ++I;
      }
    }
    // Pick a register honoring call-crossing.
    unsigned Reg = ~0u;
    if (Cur->SpansCall) {
      if (!P.CalleeFree.empty()) {
        Reg = P.CalleeFree.back();
        P.CalleeFree.pop_back();
      }
    } else {
      if (!P.CallerFree.empty()) {
        Reg = P.CallerFree.back();
        P.CallerFree.pop_back();
      } else if (!P.CalleeFree.empty()) {
        Reg = P.CalleeFree.back();
        P.CalleeFree.pop_back();
      }
    }
    if (Reg == ~0u) {
      // Spill heuristic: spill the active interval with the furthest end
      // if it is "compatible" (same constraint class or weaker), else
      // spill the current interval.
      std::pair<Interval *, unsigned> *Victim = nullptr;
      for (auto &Act : P.Active) {
        bool ActCalleeSaved = IsCalleeSaved(Act.second, Fp);
        if (Cur->SpansCall && !ActCalleeSaved)
          continue; // current needs a callee-saved reg
        if (!Victim || Act.first->End > Victim->first->End)
          Victim = &Act;
      }
      if (Victim && Victim->first->End > Cur->End) {
        Interval *Spilled = Victim->first;
        Reg = Victim->second;
        A.Locs[Spilled->VReg].Kind = Location::Spill;
        A.Locs[Spilled->VReg].SpillSlot = NextSpill++;
        Victim->first = Cur;
        A.Locs[Cur->VReg].Kind = Location::Reg;
        A.Locs[Cur->VReg].RegNum = Reg;
        if (IsCalleeSaved(Reg, Fp)) {
          if (Fp)
            A.UsedFpCalleeSaved.insert(Reg);
          else
            A.UsedIntCalleeSaved.insert(Reg);
        }
        return;
      }
      A.Locs[Cur->VReg].Kind = Location::Spill;
      A.Locs[Cur->VReg].SpillSlot = NextSpill++;
      return;
    }
    A.Locs[Cur->VReg].Kind = Location::Reg;
    A.Locs[Cur->VReg].RegNum = Reg;
    if (IsCalleeSaved(Reg, Fp)) {
      if (Fp)
        A.UsedFpCalleeSaved.insert(Reg);
      else
        A.UsedIntCalleeSaved.insert(Reg);
    }
    P.Active.push_back({Cur, Reg});
  };

  for (Interval *Cur : Work) {
    if (isFpType(Cur->Ty))
      ScanOne(Cur, FpPool, /*Fp=*/true);
    else
      ScanOne(Cur, IntPool, /*Fp=*/false);
  }

  A.NumSpillSlots = NextSpill;
  return A;
}
