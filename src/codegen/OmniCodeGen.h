//===- codegen/OmniCodeGen.h - IR to OmniVM code generation -----*- C++ -*-===//
///
/// \file
/// Generates an OmniVM object module from optimized IR. Because OmniVM is a
/// RISC-like target with 32-bit immediates and compare-and-branch, most IR
/// instructions map to a single OmniVM instruction — this is the property
/// (§3.1 of the paper) that lets the compiler's machine-independent
/// optimization survive into the final native code.
///
//===----------------------------------------------------------------------===//
#ifndef OMNI_CODEGEN_OMNICODEGEN_H
#define OMNI_CODEGEN_OMNICODEGEN_H

#include "ir/IR.h"
#include "vm/Module.h"

#include <string>

namespace omni {
namespace codegen {

/// Code generation knobs.
struct CodeGenOptions {
  /// OmniVM register file size presented to the register allocator
  /// (Table 2 sweeps 8..16). The stack pointer, link register and two
  /// assembler scratch registers are always reserved, so the allocatable
  /// integer pool is NumIntRegs - 4; the fp pool is NumFpRegs - 2.
  unsigned NumIntRegs = 16;
  unsigned NumFpRegs = 16;
};

/// OmniVM ABI register roles (beyond vm::RegSp / vm::RegRa).
constexpr unsigned ScratchA = 14; ///< emitter scratch (also frame temp)
constexpr unsigned ScratchB = 12; ///< second scratch / indirect call target
constexpr unsigned FpScratchA = 14;
constexpr unsigned FpScratchB = 15;
constexpr unsigned NumIntArgRegs = 4; ///< r0..r3
constexpr unsigned NumFpArgRegs = 4;  ///< f0..f3

/// Generates an object module (with relocations and symbols) from \p P.
/// Returns false and fills \p Error on unsupported constructs.
bool generateOmniVM(const ir::Program &P, const CodeGenOptions &Opts,
                    vm::Module &Out, std::string &Error);

} // namespace codegen
} // namespace omni

#endif // OMNI_CODEGEN_OMNICODEGEN_H
