//===- translate/SfiOpt.cpp - SFI guard elimination & hoisting ------------===//
///
/// \file
/// Pattern-directed SFI optimizer. It re-parses the naive sandbox
/// sequences the expansion phase emits ("units"), then rewrites them:
/// guard sharing across contiguous same-base accesses, SPARC or-elision
/// into indexed addressing, and loop-invariant base hoisting into the
/// dedicated hold register via a synthetic preheader region. Runs before
/// the generic region optimizations, while branch targets are still VM
/// indices, so control flow is easy to reason about. Everything here is
/// untrusted: the sficheck oracle re-proves each optimized translation.
///
//===----------------------------------------------------------------------===//
#include "translate/SfiOpt.h"

#include "vm/AddressSpace.h"

#include <algorithm>
#include <map>

using namespace omni;
using namespace omni::translate;
using namespace omni::target;

namespace {

/// Integer register defined by \p I, or -1. Mirrors the sficheck notion:
/// fp loads define an fp register, calls define their link register.
int defInt(const TInstr &I) {
  switch (I.Op) {
  case TOp::MovImm:
  case TOp::LoadImmHi:
  case TOp::OrImmLo:
  case TOp::MovReg:
  case TOp::Lea:
  case TOp::Add:
  case TOp::Sub:
  case TOp::Mul:
  case TOp::Div:
  case TOp::DivU:
  case TOp::Rem:
  case TOp::RemU:
  case TOp::And:
  case TOp::Or:
  case TOp::Xor:
  case TOp::Shl:
  case TOp::ShrL:
  case TOp::ShrA:
  case TOp::SetCond:
  case TOp::CvtFpToInt:
    return static_cast<int>(I.Rd);
  case TOp::Load:
    return I.FpVal ? -1 : static_cast<int>(I.Rd);
  case TOp::CallDirect:
  case TOp::CallIndirect:
    return static_cast<int>(I.Rd);
  default:
    return -1;
  }
}

bool isDirectBranch(TOp Op) {
  switch (Op) {
  case TOp::Branch:
  case TOp::CmpBranch:
  case TOp::BranchCC:
  case TOp::FBranchCC:
  case TOp::BranchDec:
  case TOp::CallDirect:
    return true;
  default:
    return false;
  }
}

/// One naive sandbox sequence as emitted by the expansion phase:
///   [Add S,B,(#k|X)] ; And S,Ea,mask ; [Or S,S,base] ; access
/// or the jump form `And S,T,mask ; Or S,S,base ; jump T`. Instruction
/// indices are positions in the owning region's Code.
struct Unit {
  size_t Begin = 0;   ///< Add or And
  size_t AndIdx = 0;
  int OrIdx = -1;     ///< -1 on PPC memory units
  size_t Last = 0;    ///< access instruction, or the indirect jump
  unsigned Base = 0;  ///< effective base register (pre-sandbox)
  bool Indexed = false;
  int32_t Imm = 0;    ///< constant offset (0 when folded away)
  unsigned SfiCost = 0;
  bool IsJump = false;
};

class SfiOptimizer {
public:
  SfiOptimizer(const TargetInfo &TI, TargetKind Kind,
               const SegmentLayout &Seg, std::vector<Region> &Regions,
               SfiOptStats &St)
      : TI(TI), Kind(Kind), Seg(Seg), Regions(Regions), St(St),
        S(TI.SfiAddrReg), M(TI.SfiMaskReg), Bse(TI.SfiBaseReg),
        H(TI.SfiHoldReg) {}

  void run() {
    // The mask/base invariants every rewrite leans on must actually be
    // invariant: bail out entirely if anything after the prologue writes
    // them (never true for translator output; hand-crafted regions
    // exercise this). A write to the hold register only disables
    // hoisting.
    bool HoldOk = H >= 0;
    for (const Region &R : Regions) {
      if (R.VmStart == ~0u)
        continue;
      for (const TInstr &I : R.Code) {
        int D = defInt(I);
        if (D == static_cast<int>(M) || D == static_cast<int>(Bse))
          return;
        if (D == H)
          HoldOk = false;
      }
    }
    if (HoldOk)
      hoistLoops();
    for (Region &R : Regions)
      if (R.VmStart != ~0u)
        rewriteRegion(R);
  }

private:
  const TargetInfo &TI;
  TargetKind Kind;
  const SegmentLayout &Seg;
  std::vector<Region> &Regions;
  SfiOptStats &St;
  unsigned S, M, Bse;
  int H;

  // Per-region rewrite plan.
  std::vector<uint8_t> Del;
  std::map<size_t, TInstr> Repl;
  std::map<size_t, TInstr> InsertAfter;

  void planReset(size_t N) {
    Del.assign(N, 0);
    Repl.clear();
    InsertAfter.clear();
  }

  void planApply(Region &R) {
    std::vector<TInstr> Out;
    Out.reserve(R.Code.size());
    for (size_t I = 0; I < R.Code.size(); ++I) {
      auto RIt = Repl.find(I);
      if (RIt != Repl.end())
        Out.push_back(RIt->second);
      else if (!Del[I])
        Out.push_back(R.Code[I]);
      auto AIt = InsertAfter.find(I);
      if (AIt != InsertAfter.end() && !Del[I])
        Out.push_back(AIt->second);
    }
    R.Code = std::move(Out);
  }

  bool guardOk(const Region &R, const Unit &U) const {
    return !U.IsJump && !U.Indexed && U.Imm >= 0 &&
           static_cast<uint32_t>(U.Imm) +
                   ir::memWidthBytes(R.Code[U.Last].Width) <=
               vm::GuardZoneSize;
  }

  /// Re-parses the naive sandbox sequences in \p R.
  std::vector<Unit> scanUnits(const Region &R) const {
    const std::vector<TInstr> &C = R.Code;
    std::vector<Unit> Units;
    for (size_t I = 0; I < C.size(); ++I) {
      Unit U;
      U.Begin = I;
      size_t J = I;
      // Optional address add into the sandbox register.
      if (J < C.size() && C[J].Op == TOp::Add && C[J].Rd == S) {
        U.Base = C[J].Rs1;
        if (C[J].UsesImm)
          U.Imm = C[J].Imm;
        else
          U.Indexed = true;
        if (C[J].Cat == ExpCat::Sfi)
          U.SfiCost++;
        ++J;
        if (!(J < C.size() && C[J].Op == TOp::And && C[J].Rs1 == S))
          continue;
      }
      // The mask.
      if (!(J < C.size() && C[J].Op == TOp::And && !C[J].UsesImm &&
            C[J].Rd == S && C[J].Rs2 == M))
        continue;
      if (J == U.Begin)
        U.Base = C[J].Rs1;
      U.AndIdx = J;
      U.SfiCost++;
      ++J;
      if (Kind == TargetKind::Ppc) {
        // PPC memory form: indexed access through the segment base.
        if (J < C.size() && (C[J].Op == TOp::Load || C[J].Op == TOp::Store) &&
            C[J].Mode == AddrMode::BaseIndex && C[J].Rs1 == S &&
            C[J].Rs2 == Bse) {
          U.Last = J;
          Units.push_back(U);
          I = J;
        }
        continue;
      }
      // The base or.
      if (!(J < C.size() && C[J].Op == TOp::Or && !C[J].UsesImm &&
            C[J].Rd == S && C[J].Rs1 == S && C[J].Rs2 == Bse))
        continue;
      U.OrIdx = static_cast<int>(J);
      U.SfiCost++;
      ++J;
      if (J < C.size() && (C[J].Op == TOp::Load || C[J].Op == TOp::Store) &&
          C[J].Mode == AddrMode::BaseImm && C[J].Rs1 == S && C[J].Imm == 0) {
        U.Last = J;
        Units.push_back(U);
        I = J;
        continue;
      }
      // Jump sandbox: the transfer goes through the original register;
      // the masked copy in S is what the checker certifies.
      if (U.Begin == U.AndIdx && J < C.size() &&
          (C[J].Op == TOp::JumpIndirect || C[J].Op == TOp::CallIndirect) &&
          C[J].Rs1 == U.Base) {
        U.Last = J;
        U.IsJump = true;
        Units.push_back(U);
        I = J;
      }
    }
    return Units;
  }

  /// True when the access of \p Prev or any instruction strictly between
  /// the two units defines one of the registers a shared guard depends on.
  bool gapBreaks(const Region &R, const Unit &Prev, const Unit &Cur,
                 unsigned Base) const {
    for (size_t I = Prev.Last; I < Cur.Begin; ++I) {
      int D = defInt(R.Code[I]);
      if (D >= 0) {
        unsigned U = static_cast<unsigned>(D);
        if (U == Base || U == S || U == M || U == Bse)
          return true;
      }
      // Barriers (host calls write VM-mapped registers).
      if (R.Code[I].Op == TOp::HostCall || R.Code[I].Op == TOp::Trap)
        return true;
    }
    return false;
  }

  /// SPARC or-elision on one memory unit: `(x & mask) | base` equals
  /// `(x & mask) + base` bit-exactly (masked < Size, base Size-aligned),
  /// so the store folds the or into indexed addressing.
  void orElide(Region &R, const Unit &U) {
    if (Kind != TargetKind::Sparc || U.OrIdx < 0)
      return;
    Del[static_cast<size_t>(U.OrIdx)] = 1;
    TInstr A = R.Code[U.Last];
    A.Mode = AddrMode::BaseIndex;
    A.Rs1 = S;
    A.Rs2 = Bse;
    A.Imm = 0;
    Repl[U.Last] = A;
    St.OrElisions++;
  }

  void rewriteRegion(Region &R) {
    std::vector<Unit> Units = scanUnits(R);
    if (Units.empty())
      return;
    planReset(R.Code.size());
    size_t UI = 0;
    while (UI < Units.size()) {
      const Unit &U = Units[UI];
      if (U.IsJump) {
        // The jump itself reads the original register; only the masked
        // copy matters for the proof, so the or is pure overhead.
        if (Kind == TargetKind::Sparc && U.OrIdx >= 0) {
          Del[static_cast<size_t>(U.OrIdx)] = 1;
          St.OrElisions++;
        }
        ++UI;
        continue;
      }
      bool Elig = !U.Indexed && guardOk(R, U) && U.Base != S &&
                  U.Base != M && U.Base != Bse &&
                  (H < 0 || U.Base != static_cast<unsigned>(H));
      if (!Elig) {
        orElide(R, U);
        ++UI;
        continue;
      }
      // Extend the run of shareable same-base units.
      size_t VE = UI + 1;
      while (VE < Units.size()) {
        const Unit &W = Units[VE];
        if (W.IsJump || W.Indexed || !guardOk(R, W) || W.Base != U.Base ||
            gapBreaks(R, Units[VE - 1], W, U.Base))
          break;
        ++VE;
      }
      unsigned N = static_cast<unsigned>(VE - UI);
      unsigned Naive = 0;
      for (size_t W = UI; W < VE; ++W)
        Naive += Units[W].SfiCost;
      unsigned Group = 2;
      unsigned Orel = Kind == TargetKind::Sparc ? Naive - N : ~0u;
      if (Naive <= Group && Naive <= Orel) {
        ++UI; // already minimal (e.g. a lone unoffset access)
        continue;
      }
      if (Orel <= Group) {
        for (size_t W = UI; W < VE; ++W)
          orElide(R, Units[W]);
        UI = VE;
        continue;
      }
      // Shared guard: the leader masks the base once; every access rides
      // the guard zone as [S + k] exactly like sp-relative accesses.
      const Unit &L = Units[UI];
      if (L.Begin != L.AndIdx) {
        Del[L.Begin] = 1;
        TInstr A = R.Code[L.AndIdx];
        A.Rs1 = U.Base;
        Repl[L.AndIdx] = A;
      }
      if (Kind == TargetKind::Ppc) {
        TInstr O;
        O.Op = TOp::Or;
        O.Cat = ExpCat::Sfi;
        O.Rd = S;
        O.Rs1 = S;
        O.Rs2 = Bse;
        O.VmIndex = R.Code[L.AndIdx].VmIndex;
        InsertAfter[L.AndIdx] = O;
      }
      for (size_t W = UI; W < VE; ++W) {
        const Unit &X = Units[W];
        if (W != UI) {
          for (size_t I = X.Begin; I < X.Last; ++I)
            Del[I] = 1;
        }
        TInstr A = R.Code[X.Last];
        A.Mode = AddrMode::BaseImm;
        A.Rs1 = S;
        A.Rs2 = 0;
        A.Imm = X.Imm;
        Repl[X.Last] = A;
      }
      St.GroupsFormed++;
      St.UnitsCoalesced += N;
      UI = VE;
    }
    planApply(R);
  }

  //===--------------------------------------------------------------------===//
  // Loop-invariant hoisting
  //===--------------------------------------------------------------------===//

  /// A single-region self-loop: the trailing branch is conditional and
  /// targets the region's own start, and nothing else transfers control.
  bool isSelfLoop(const Region &R) const {
    const std::vector<TInstr> &C = R.Code;
    int BI = -1;
    for (size_t I = 0; I < C.size(); ++I) {
      if (C[I].isBranch()) {
        if (BI >= 0)
          return false;
        BI = static_cast<int>(I);
      } else if (BI >= 0 && C[I].Op != TOp::Nop) {
        return false; // only a delay-slot nop may follow the branch
      }
    }
    if (BI < 0)
      return false;
    const TInstr &B = C[static_cast<size_t>(BI)];
    switch (B.Op) {
    case TOp::CmpBranch:
    case TOp::BranchCC:
    case TOp::FBranchCC:
    case TOp::BranchDec:
      break;
    default:
      return false;
    }
    return static_cast<uint32_t>(B.Target) == R.VmStart;
  }

  /// Entry-path safety needs no global scan: the translator routes every
  /// VmToNative entry of the loop's VM range through the preheader
  /// (Region::PreheaderFor), and direct branches resolve through
  /// VmToNative too — so returns, indirect jumps, and branches from other
  /// regions all re-run the And/Or before entering the body. The only
  /// transfer that bypasses the preheader is the loop's own back edge
  /// (Region::HasPreheader), which is exactly the point of the hoist.
  void hoistLoops() {
    std::vector<Region> NewRegions;
    NewRegions.reserve(Regions.size());
    for (size_t RI = 0; RI < Regions.size(); ++RI) {
      Region &R = Regions[RI];
      if (R.VmStart != ~0u && isSelfLoop(R)) {
        Region Pre;
        if (hoistOne(R, Pre))
          NewRegions.push_back(std::move(Pre));
      }
      NewRegions.push_back(std::move(R));
    }
    Regions = std::move(NewRegions);
  }

  /// Hoists the most profitable invariant base of self-loop \p R into the
  /// hold register; fills \p Pre with the preheader region. Returns false
  /// when no unit qualifies.
  bool hoistOne(Region &R, Region &Pre) {
    for (const TInstr &I : R.Code)
      if (I.Op == TOp::HostCall || I.Op == TOp::Trap || I.Op == TOp::Halt)
        return false;
    std::vector<Unit> Units = scanUnits(R);
    if (Units.empty())
      return false;
    // Cost per candidate base; a base written anywhere in the loop is not
    // invariant (this includes a sandboxed load clobbering its own base).
    std::map<unsigned, unsigned> BaseCost;
    for (const Unit &U : Units) {
      if (U.IsJump || U.Indexed || !guardOk(R, U))
        continue;
      if (U.Base == S || U.Base == M || U.Base == Bse ||
          U.Base == static_cast<unsigned>(H))
        continue;
      bool Written = false;
      for (const TInstr &I : R.Code)
        if (defInt(I) == static_cast<int>(U.Base))
          Written = true;
      if (!Written)
        BaseCost[U.Base] += U.SfiCost;
    }
    if (BaseCost.empty())
      return false;
    unsigned Best = BaseCost.begin()->first;
    for (const auto &[B, C] : BaseCost)
      if (C > BaseCost[Best])
        Best = B;

    planReset(R.Code.size());
    for (const Unit &U : Units) {
      if (U.IsJump || U.Indexed || !guardOk(R, U) || U.Base != Best)
        continue;
      for (size_t I = U.Begin; I < U.Last; ++I)
        Del[I] = 1;
      TInstr A = R.Code[U.Last];
      A.Mode = AddrMode::BaseImm;
      A.Rs1 = static_cast<unsigned>(H);
      A.Rs2 = 0;
      A.Imm = U.Imm;
      Repl[U.Last] = A;
      St.UnitsHoisted++;
    }
    planApply(R);

    Pre.VmStart = ~0u; // synthetic: owns no label of its own
    Pre.PreheaderFor = R.VmStart;
    R.HasPreheader = true;
    TInstr A;
    A.Op = TOp::And;
    A.Cat = ExpCat::Sfi;
    A.Rd = static_cast<unsigned>(H);
    A.Rs1 = Best;
    A.Rs2 = M;
    A.VmIndex = -1;
    Pre.Code.push_back(A);
    TInstr O;
    O.Op = TOp::Or;
    O.Cat = ExpCat::Sfi;
    O.Rd = static_cast<unsigned>(H);
    O.Rs1 = static_cast<unsigned>(H);
    O.Rs2 = Bse;
    O.VmIndex = -1;
    Pre.Code.push_back(O);
    St.LoopsHoisted++;
    return true;
  }
};

} // namespace

SfiOptStats omni::translate::optimizeSfiRegions(const TargetInfo &TI,
                                                TargetKind Kind,
                                                const TranslateOptions &Opts,
                                                const SegmentLayout &Seg,
                                                std::vector<Region> &Regions) {
  SfiOptStats St;
  if (!Opts.Sfi || !Opts.SfiOptimize || Kind == TargetKind::X86)
    return St;
  int Before = 0, After = 0;
  for (const Region &R : Regions)
    for (const TInstr &I : R.Code)
      if (I.Cat == ExpCat::Sfi)
        ++Before;
  SfiOptimizer Opt(TI, Kind, Seg, Regions, St);
  Opt.run();
  for (const Region &R : Regions)
    for (const TInstr &I : R.Code)
      if (I.Cat == ExpCat::Sfi)
        ++After;
  St.SfiInstrsRemoved = Before - After;
  return St;
}
