//===- translate/Translator.h - OmniVM -> native translation ----*- C++ -*-===//
///
/// \file
/// The Omniware load-time translator: expands verified OmniVM code into
/// native code for one of the four targets, optionally inserting software
/// fault isolation checks (sandboxed stores and indirect jumps using
/// dedicated registers) and applying the paper's translator optimizations:
///
///  * MIPS, PPC, x86: local list instruction scheduling (§4.2);
///  * MIPS, SPARC: branch delay-slot filling;
///  * SPARC: global pointer for data-segment addressing, annulled branches;
///  * x86: memory-operand selection and peephole cleanup.
///
/// Every extra native instruction is tagged with its expansion category
/// (addr / cmp / ldi / bnop / sfi — Figure 1), so dynamic expansion
/// accounting falls out of simulation.
///
//===----------------------------------------------------------------------===//
#ifndef OMNI_TRANSLATE_TRANSLATOR_H
#define OMNI_TRANSLATE_TRANSLATOR_H

#include "target/TargetInfo.h"
#include "vm/Module.h"

#include <string>

namespace omni {
namespace translate {

/// Translation configuration. The same engine also produces the paper's
/// *native compiler baselines*: a native `cc`/`gcc` run is a translation
/// with SFI off and native-profile knobs on, so the baseline differs from
/// mobile code in exactly the four factors §4.1 enumerates — (i) SFI,
/// (ii) instruction-set expansion, (iii) global optimization level (set at
/// the IR stage), (iv) machine-dependent optimization (the knobs below).
struct TranslateOptions {
  /// Insert SFI sandboxing sequences (stores and indirect jumps). On x86
  /// the system uses hardware segmentation, so SFI adds no instructions
  /// there — reproducing the near-zero x86 SFI cost in Tables 3/4.
  bool Sfi = true;
  /// Also sandbox loads ("efficient read protection", §1 — a capability
  /// the paper notes SFI supports but Omniware had not yet incorporated).
  /// Implemented here as an extension; bench/ablation_read_protection
  /// measures its cost.
  bool SfiReads = false;
  /// Apply translator optimizations (off for Table 5): local scheduling
  /// (MIPS/PPC/x86), delay-slot filling (MIPS/SPARC), SPARC global
  /// pointer.
  bool Optimize = true;
  /// Run the SFI optimizer (src/translate/SfiOpt.*): guard sharing and
  /// immediate folding across contiguous accesses off one sandboxed base,
  /// SPARC or-elision via indexed addressing, and loop-invariant
  /// mask/base hoisting. Off by default: the optimized form traps wild
  /// accesses in the guard zone where naive SFI wraps them into the
  /// segment — containment is identical, but trap behaviour of hostile
  /// modules differs, so the paper-fidelity configurations keep the naive
  /// expansion. Every optimized translation must still pass sficheck.
  bool SfiOptimize = false;
  /// Align region starts that are backward-branch targets to this power
  /// of two by padding with nops (0 = off). A layout knob only: in this
  /// timing model alignment itself is free, so the knob measures pure
  /// padding cost (cf. the instruction-padding study in PAPERS.md).
  unsigned LoopAlign = 0;

  // --- native-profile knobs (off for mobile code) ------------------------
  /// Suppress the instruction scheduler even when Optimize is set; models
  /// the gcc-2.x-era native baseline, whose scheduling the paper found
  /// weaker than the translator's.
  bool NoSchedule = false;
  /// Use a global pointer on every RISC target (native compilers' gp/TOC
  /// conventions), not just SPARC.
  bool GpAll = false;
  /// Machine-specific selection only native compilers perform: PPC
  /// record-form compares (fold compare-against-zero into the defining
  /// ALU op) and direct set-condition selection on MIPS/x86.
  bool CcSelection = false;

  /// Mobile-code translation (Tables 1/3/4; Optimize=false for Table 5).
  static TranslateOptions mobile(bool WithSfi, bool WithOptimize = true) {
    TranslateOptions O;
    O.Sfi = WithSfi;
    O.Optimize = WithOptimize;
    return O;
  }
  /// Mobile-code translation with the SFI optimizer on (ablation mode).
  static TranslateOptions mobileSfiOpt() {
    TranslateOptions O = mobile(true);
    O.SfiOptimize = true;
    return O;
  }
  /// Vendor-cc native baseline: everything on, no SFI.
  static TranslateOptions nativeCc() {
    TranslateOptions O;
    O.Sfi = false;
    O.GpAll = true;
    O.CcSelection = true;
    return O;
  }
  /// gcc native baseline: gp but no scheduler, generic selection.
  static TranslateOptions nativeGcc() {
    TranslateOptions O;
    O.Sfi = false;
    O.GpAll = true;
    O.NoSchedule = true;
    return O;
  }
};

/// Where the module's data segment lives (known at load time).
struct SegmentLayout {
  uint32_t Base = vm::DefaultSegmentBase;
  uint32_t Size = vm::DefaultSegmentSize;
};

struct SfiOptStats; // translate/SfiOpt.h

/// Translates linked executable \p Exe for target \p Kind. The module must
/// already be verified. Returns false and fills \p Error on unsupported
/// input. \p OptStats, when non-null, receives what the SFI optimizer did
/// (all zeros unless Opts.SfiOptimize).
bool translate(target::TargetKind Kind, const vm::Module &Exe,
               const TranslateOptions &Opts, const SegmentLayout &Seg,
               target::TargetCode &Out, std::string &Error,
               SfiOptStats *OptStats = nullptr);

/// Renders translated code as target-flavoured assembly (debug).
std::string printTargetCode(target::TargetKind Kind,
                            const target::TargetCode &Code);

} // namespace translate
} // namespace omni

#endif // OMNI_TRANSLATE_TRANSLATOR_H
