//===- translate/SfiOpt.h - SFI guard elimination & hoisting ----*- C++ -*-===//
///
/// \file
/// The SFI optimizer: a range/provenance analysis over translation regions
/// that removes redundant sandboxing sequences from the naive expansion.
/// Three transforms, all proposed here and *proved* sound per translation
/// by the sficheck oracle (the optimizer is untrusted):
///
///  * guard sharing — contiguous accesses off one base register share a
///    single mask+or, each access riding the guard zone as `[S + k]`
///    (small constant offsets, like sp-relative accesses already do);
///  * SPARC or-elision — `(x & mask) | base == (x & mask) + base` because
///    the masked value is below the segment size and the base is aligned
///    to it, so a store can fold the `or` into indexed addressing
///    `[S + base]` (bit-exact in all cases, even for wild addresses); the
///    same applies to the jump-sandbox `or`;
///  * loop-invariant hoisting — a self-loop region whose accesses go
///    through a base never written in the loop gets a preheader that
///    sandboxes the base once into the dedicated hold register
///    (TargetInfo::SfiHoldReg); in-loop accesses become `[hold + k]`.
///
/// Semantics note: for in-segment addresses the optimized and naive forms
/// compute identical addresses. For *wild* addresses the naive form wraps
/// them into the segment while the shared/hoisted form traps in the guard
/// zone — containment is preserved either way, but trap behaviour of
/// hostile modules differs, which is why TranslateOptions::SfiOptimize is
/// opt-in (the paper-fidelity configurations keep the naive expansion).
///
//===----------------------------------------------------------------------===//
#ifndef OMNI_TRANSLATE_SFIOPT_H
#define OMNI_TRANSLATE_SFIOPT_H

#include "translate/Region.h"
#include "translate/Translator.h"

#include <vector>

namespace omni {
namespace translate {

/// What the optimizer did to one translation (asserted by tests and
/// reported by tools/sficheck --sfi-opt --verbose).
struct SfiOptStats {
  unsigned GroupsFormed = 0;   ///< shared-guard groups (>= 2 accesses)
  unsigned UnitsCoalesced = 0; ///< accesses folded into a shared guard
  unsigned OrElisions = 0;     ///< SPARC store/jump or -> indexed folds
  unsigned LoopsHoisted = 0;   ///< preheaders created
  unsigned UnitsHoisted = 0;   ///< in-loop accesses rewritten to [hold+k]
  int SfiInstrsRemoved = 0;    ///< net static ExpCat::Sfi delta (removed-added)
};

/// Runs the SFI optimizer over \p Regions in place (between emission and
/// the generic region optimizations; branch targets are still VM indices).
/// Hoisting marks preheaders via Region::PreheaderFor /
/// Region::HasPreheader; the translator's concatenation honors them by
/// routing every VmToNative entry of the loop range through the preheader
/// while the back edge bypasses it. No-op on x86 (hardware segmentation)
/// or when SFI is off.
SfiOptStats optimizeSfiRegions(const target::TargetInfo &TI,
                               target::TargetKind Kind,
                               const TranslateOptions &Opts,
                               const SegmentLayout &Seg,
                               std::vector<Region> &Regions);

} // namespace translate
} // namespace omni

#endif // OMNI_TRANSLATE_SFIOPT_H
