//===- translate/Region.cpp - region scheduling and delay slots -----------===//

#include "translate/Region.h"

#include <algorithm>
#include <cassert>

using namespace omni;
using namespace omni::translate;
using namespace omni::target;

bool DepSets::conflict(const DepSets &E, const DepSets &L) {
  if (E.Barrier || L.Barrier)
    return true;
  // RAW / WAR / WAW on integer registers.
  if ((E.IntW0 & (L.IntR0 | L.IntW0)) || (E.IntR0 & L.IntW0))
    return true;
  if ((E.FpW & (L.FpR | L.FpW)) || (E.FpR & L.FpW))
    return true;
  if ((E.WritesCc && (L.ReadsCc || L.WritesCc)) || (E.ReadsCc && L.WritesCc))
    return true;
  if ((E.WritesFcc && (L.ReadsFcc || L.WritesFcc)) ||
      (E.ReadsFcc && L.WritesFcc))
    return true;
  if ((E.WritesCtr && (L.ReadsCtr || L.WritesCtr)) ||
      (E.ReadsCtr && L.WritesCtr))
    return true;
  // Memory: loads may pass loads; stores order with everything.
  if ((E.WritesMem && (L.ReadsMem || L.WritesMem)) ||
      (E.ReadsMem && L.WritesMem))
    return true;
  return false;
}

DepSets omni::translate::computeDeps(const TargetInfo &TI, const TInstr &I) {
  DepSets D;
  auto RInt = [&](unsigned R) {
    if (!(TI.HasZeroReg && R == TI.ZeroReg))
      D.IntR0 |= 1ull << R;
  };
  auto WInt = [&](unsigned R) {
    if (!(TI.HasZeroReg && R == TI.ZeroReg))
      D.IntW0 |= 1ull << R;
  };
  auto RFp = [&](unsigned R) { D.FpR |= 1u << R; };
  auto WFp = [&](unsigned R) { D.FpW |= 1u << R; };
  auto Addr = [&]() {
    if (I.Mode != AddrMode::Abs) {
      RInt(I.Rs1);
      if (I.Mode == AddrMode::BaseIndex || I.Mode == AddrMode::BaseIndexImm)
        RInt(I.Rs2);
    }
  };

  switch (I.Op) {
  case TOp::MovImm:
  case TOp::LoadImmHi:
    WInt(I.Rd);
    break;
  case TOp::OrImmLo:
  case TOp::MovReg:
    RInt(I.Rs1);
    WInt(I.Rd);
    break;
  case TOp::Lea:
    Addr();
    WInt(I.Rd);
    break;
  case TOp::Load:
    Addr();
    D.ReadsMem = true;
    if (I.MemOperand)
      D.ReadsMem = true;
    if (I.FpVal)
      WFp(I.Rd);
    else
      WInt(I.Rd);
    break;
  case TOp::Store:
    Addr();
    D.WritesMem = true;
    if (I.FpVal)
      RFp(I.Rd);
    else
      RInt(I.Rd);
    break;
  case TOp::Cmp:
    RInt(I.Rs1);
    if (I.MemOperand) {
      Addr();
      D.ReadsMem = true;
    } else if (!I.UsesImm) {
      RInt(I.Rs2);
    }
    D.WritesCc = true;
    break;
  case TOp::SetCond:
    RInt(I.Rs1);
    if (!I.UsesImm)
      RInt(I.Rs2);
    WInt(I.Rd);
    break;
  case TOp::FCmp:
    RFp(I.Rs1);
    RFp(I.Rs2);
    D.WritesFcc = true;
    break;
  case TOp::CmpBranch:
    RInt(I.Rs1);
    if (!I.UsesImm)
      RInt(I.Rs2);
    break;
  case TOp::BranchCC:
    D.ReadsCc = true;
    break;
  case TOp::FBranchCC:
    D.ReadsFcc = true;
    break;
  case TOp::BranchDec:
    D.ReadsCtr = true;
    D.WritesCtr = true;
    break;
  case TOp::MoveToCtr:
    RInt(I.Rs1);
    D.WritesCtr = true;
    break;
  case TOp::Branch:
    break;
  case TOp::CallDirect:
  case TOp::CallIndirect:
    if (I.Op == TOp::CallIndirect)
      RInt(I.Rs1);
    if (!TI.LinkIsMemory)
      WInt(I.Rd);
    else
      D.WritesMem = true;
    break;
  case TOp::JumpIndirect:
    RInt(I.Rs1);
    break;
  case TOp::HostCall:
  case TOp::Trap:
  case TOp::Halt:
    D.Barrier = true;
    break;
  case TOp::FMov:
  case TOp::FNeg:
  case TOp::CvtFpToFp:
    RFp(I.Rs1);
    WFp(I.Rd);
    break;
  case TOp::CvtIntToFp:
    RInt(I.Rs1);
    WFp(I.Rd);
    break;
  case TOp::CvtFpToInt:
    RFp(I.Rs1);
    WInt(I.Rd);
    break;
  case TOp::FAdd:
  case TOp::FSub:
  case TOp::FMul:
  case TOp::FDiv:
    RFp(I.Rs1);
    RFp(I.Rs2);
    WFp(I.Rd);
    break;
  case TOp::Nop:
    break;
  default: // integer ALU
    RInt(I.Rs1);
    if (I.MemOperand) {
      Addr();
      D.ReadsMem = true;
    } else if (!I.UsesImm) {
      RInt(I.Rs2);
    }
    WInt(I.Rd);
    break;
  }
  if (I.RecordForm)
    D.WritesCc = true;
  return D;
}

namespace {

/// Index of the first trailing instruction that must not be reordered:
/// a control transfer plus (on delay-slot targets) its slot.
size_t straightLineEnd(const TargetInfo &TI, const Region &R) {
  size_t N = R.Code.size();
  if (N == 0)
    return 0;
  // Find a trailing branch; everything from it on stays fixed.
  // Regions contain at most one control transfer, at the end (possibly
  // followed by its delay slot).
  for (size_t I = N; I > 0; --I) {
    if (R.Code[I - 1].isBranch())
      return I - 1;
  }
  return N;
}

} // namespace

void omni::translate::scheduleRegion(const TargetInfo &TI, Region &R) {
  size_t End = straightLineEnd(TI, R);
  if (End < 3)
    return;

  std::vector<TInstr> Body(R.Code.begin(), R.Code.begin() + End);
  size_t N = Body.size();
  std::vector<DepSets> Deps(N);
  for (size_t I = 0; I < N; ++I)
    Deps[I] = computeDeps(TI, Body[I]);

  // Dependence edges (I -> J means J must follow I).
  std::vector<std::vector<unsigned>> Succs(N);
  std::vector<unsigned> PredCount(N, 0);
  for (size_t I = 0; I < N; ++I)
    for (size_t J = I + 1; J < N; ++J)
      if (DepSets::conflict(Deps[I], Deps[J])) {
        Succs[I].push_back(static_cast<unsigned>(J));
        ++PredCount[J];
      }

  // Priority: critical-path length (latency-weighted height).
  std::vector<unsigned> Height(N, 0);
  for (size_t I = N; I > 0; --I) {
    unsigned Idx = static_cast<unsigned>(I - 1);
    unsigned H = 0;
    for (unsigned S : Succs[Idx])
      H = std::max(H, Height[S]);
    Height[Idx] = H + instrLatency(TI, Body[Idx]);
  }

  // Cycle-driven list scheduling: prefer ready instructions whose operands
  // are available; break ties by height then original order.
  std::vector<uint8_t> Scheduled(N, 0);
  std::vector<unsigned> ReadyAt(N, 0); // earliest cycle operand-ready
  std::vector<TInstr> Out;
  Out.reserve(N);
  unsigned Cycle = 0;
  size_t Remaining = N;
  std::vector<unsigned> FinishAt(N, 0);

  while (Remaining) {
    int Best = -1;
    bool BestStalls = true;
    for (size_t I = 0; I < N; ++I) {
      if (Scheduled[I] || PredCount[I])
        continue;
      bool Stalls = ReadyAt[I] > Cycle;
      if (Best < 0 || (BestStalls && !Stalls) ||
          (Stalls == BestStalls &&
           Height[I] > Height[static_cast<size_t>(Best)])) {
        Best = static_cast<int>(I);
        BestStalls = Stalls;
      }
    }
    assert(Best >= 0 && "cyclic dependence graph");
    unsigned B = static_cast<unsigned>(Best);
    Scheduled[B] = 1;
    --Remaining;
    unsigned Issue = std::max(Cycle, ReadyAt[B]);
    FinishAt[B] = Issue + instrLatency(TI, Body[B]);
    for (unsigned S : Succs[B]) {
      ReadyAt[S] = std::max(ReadyAt[S], FinishAt[B]);
      --PredCount[S];
    }
    Out.push_back(Body[B]);
    Cycle = Issue + 1;
  }

  std::copy(Out.begin(), Out.end(), R.Code.begin());
}

void omni::translate::fillDelaySlot(const TargetInfo &TI, Region &R) {
  if (!TI.HasDelaySlot || R.Code.size() < 3)
    return;
  size_t N = R.Code.size();
  // Pattern: ..., candidate, branch, nop(Bnop).
  if (R.Code[N - 1].Op != TOp::Nop ||
      R.Code[N - 1].Cat != ExpCat::Bnop || !R.Code[N - 2].isBranch())
    return;
  const TInstr &Branch = R.Code[N - 2];
  DepSets BranchDeps = computeDeps(TI, Branch);
  // Search upward for a legal candidate (first one wins; instructions it
  // would jump over must not depend on it, which holds only for the
  // immediately preceding instruction — keep it simple and correct).
  size_t CandIdx = N - 3;
  const TInstr &Cand = R.Code[CandIdx];
  if (Cand.isBranch() || Cand.Op == TOp::Nop)
    return;
  DepSets CandDeps = computeDeps(TI, Cand);
  if (CandDeps.Barrier)
    return;
  // The branch must not read anything the candidate writes (the slot
  // executes after the branch decision).
  if ((CandDeps.IntW0 & BranchDeps.IntR0) || (CandDeps.FpW & BranchDeps.FpR))
    return;
  if (CandDeps.WritesCc && BranchDeps.ReadsCc)
    return;
  if (CandDeps.WritesFcc && BranchDeps.ReadsFcc)
    return;
  if (CandDeps.WritesCtr && BranchDeps.ReadsCtr)
    return;
  // A call's link write must not clobber the candidate (and vice versa).
  if ((BranchDeps.IntW0 & (CandDeps.IntR0 | CandDeps.IntW0)))
    return;
  if (BranchDeps.WritesMem && (CandDeps.ReadsMem || CandDeps.WritesMem))
    return;
  // Move the candidate into the slot.
  TInstr Moved = Cand;
  R.Code.erase(R.Code.begin() + CandIdx);
  R.Code.back() = Moved; // replaces the nop
}

void omni::translate::foldRecordForms(const TargetInfo &TI, Region &R) {
  auto Recordable = [](TOp Op) {
    switch (Op) {
    case TOp::Add:
    case TOp::Sub:
    case TOp::And:
    case TOp::Or:
    case TOp::Xor:
    case TOp::Shl:
    case TOp::ShrL:
    case TOp::ShrA:
    case TOp::MovReg: // mr. / or.
      return true;
    default:
      return false;
    }
  };
  for (size_t I = 1; I < R.Code.size(); ++I) {
    TInstr &CmpI = R.Code[I];
    if (CmpI.Op != TOp::Cmp || !CmpI.UsesImm || CmpI.Imm != 0 ||
        CmpI.MemOperand)
      continue;
    // The consuming branch must use a signed condition (cr0 semantics).
    bool SignedUse = true;
    for (size_t J = I + 1; J < R.Code.size(); ++J) {
      if (R.Code[J].Op == TOp::BranchCC) {
        ir::Cond C = R.Code[J].Cc;
        SignedUse = C == ir::Cond::Eq || C == ir::Cond::Ne ||
                    C == ir::Cond::Lt || C == ir::Cond::Le ||
                    C == ir::Cond::Gt || C == ir::Cond::Ge;
        break;
      }
      if (R.Code[J].Op == TOp::Cmp)
        break;
    }
    if (!SignedUse)
      continue;
    // Find the defining instruction of the compared register; no
    // condition-code writer may sit between it and the branch.
    for (size_t J = I; J-- > 0;) {
      const DepSets D = computeDeps(TI, R.Code[J]);
      if (D.WritesCc || D.Barrier || R.Code[J].isBranch())
        break;
      if (D.IntW0 & (1ull << CmpI.Rs1)) {
        if (Recordable(R.Code[J].Op) && R.Code[J].Rd == CmpI.Rs1 &&
            !R.Code[J].RecordForm) {
          R.Code[J].RecordForm = true;
          R.Code.erase(R.Code.begin() + I);
          --I;
        }
        break;
      }
    }
  }
}

void omni::translate::peepholeRegion(const TargetInfo &TI, Region &R) {
  (void)TI;
  for (size_t I = 0; I < R.Code.size();) {
    const TInstr &C = R.Code[I];
    bool SelfMove = (C.Op == TOp::MovReg && C.Rd == C.Rs1) ||
                    (C.Op == TOp::FMov && C.Rd == C.Rs1);
    if (SelfMove) {
      R.Code.erase(R.Code.begin() + I);
      continue;
    }
    ++I;
  }
}
