//===- translate/Region.h - translation regions (internal) ------*- C++ -*-===//
///
/// \file
/// Internal shared structures between the translator's emission phase and
/// its optimization phase. A region is the native code emitted for a run
/// of OmniVM instructions between two *labels* (possible control-transfer
/// targets); translator optimizations only reorder within a region, so the
/// label -> native mapping stays exact.
///
//===----------------------------------------------------------------------===//
#ifndef OMNI_TRANSLATE_REGION_H
#define OMNI_TRANSLATE_REGION_H

#include "target/TargetInfo.h"

#include <vector>

namespace omni {
namespace translate {

/// Native code for one label-to-label range of OmniVM code.
struct Region {
  uint32_t VmStart = 0; ///< OmniVM index of the label starting this region
  std::vector<target::TInstr> Code;

  /// SFI-optimizer loop preheaders (synthetic regions, VmStart == ~0u):
  /// when != ~0u, this region re-establishes the hold register for the
  /// self-loop region that immediately follows, and the translator routes
  /// every VmToNative entry of that loop's VM range through it — so any
  /// mapped entry (return, indirect jump, direct branch from elsewhere)
  /// re-sandboxes the hoisted base. Only the loop's own back edge
  /// bypasses the preheader.
  uint32_t PreheaderFor = ~0u;
  /// Set on a self-loop region whose preheader precedes it: its back
  /// edge resolves to the region's own start, not through VmToNative.
  bool HasPreheader = false;
};

/// Register/resource read-write sets used by the scheduler and the
/// delay-slot filler. Condition codes, fp condition codes, CTR and memory
/// are modeled as pseudo-resources.
struct DepSets {
  uint64_t IntR0 = 0; ///< int regs 0..32 read (bit i)
  uint64_t IntW0 = 0;
  uint32_t FpR = 0; ///< fp regs 0..31 read
  uint32_t FpW = 0;
  bool ReadsCc = false, WritesCc = false;
  bool ReadsFcc = false, WritesFcc = false;
  bool ReadsCtr = false, WritesCtr = false;
  bool ReadsMem = false, WritesMem = false;
  bool Barrier = false; ///< host calls, traps: nothing moves across

  /// True when \p Later depends on \p Earlier (RAW/WAR/WAW on any
  /// resource) or ordering must be preserved.
  static bool conflict(const DepSets &Earlier, const DepSets &Later);
};

/// Computes the dependence sets of \p I for target \p TI.
DepSets computeDeps(const target::TargetInfo &TI, const target::TInstr &I);

/// List-schedules the straight-line part of \p R (everything before a
/// trailing control transfer and its delay slot) to minimize stalls under
/// \p TI's latencies. Pure reordering; no instructions added or removed.
void scheduleRegion(const target::TargetInfo &TI, Region &R);

/// Fills the delay slot of \p R's trailing branch from the instruction
/// stream above it when legal; removes the filled nop.
void fillDelaySlot(const target::TargetInfo &TI, Region &R);

/// Removes no-op moves and plain (non-delay-slot) nops.
void peepholeRegion(const target::TargetInfo &TI, Region &R);

/// PPC record-form selection (native cc profile): deletes a compare
/// against zero whose operand is defined by the immediately preceding ALU
/// instruction, marking that instruction RecordForm.
void foldRecordForms(const target::TargetInfo &TI, Region &R);

} // namespace translate
} // namespace omni

#endif // OMNI_TRANSLATE_REGION_H
