//===- translate/Translator.cpp --------------------------------------------===//

#include "translate/Translator.h"

#include "support/Format.h"
#include "translate/Region.h"
#include "translate/SfiOpt.h"
#include "vm/AddressSpace.h"
#include "vm/Opcode.h"

#include <cassert>
#include <map>
#include <set>

using namespace omni;
using namespace omni::translate;
using namespace omni::target;
using vm::Opcode;

namespace {

/// Bytes reserved at the segment top for memory-mapped OmniVM registers
/// (x86). Int slots: 16*4; fp slots: 16*8.
constexpr uint32_t IntSlotsOffset = 192; // from segment top
constexpr uint32_t FpSlotsOffset = 128;

class TranslatorImpl {
public:
  TranslatorImpl(TargetKind Kind, const vm::Module &Exe,
                 const TranslateOptions &Opts, const SegmentLayout &Seg,
                 TargetCode &Out)
      : Kind(Kind), TI(getTargetInfo(Kind)), Exe(Exe), Opts(Opts), Seg(Seg),
        Out(Out) {}

  bool run(std::string &Error);

  SfiOptStats OptStats; ///< what the SFI optimizer did (zeros if off)

private:
  // --- emission ------------------------------------------------------------
  TInstr &emit(TInstr I) {
    I.VmIndex = CurVmIndex;
    Cur->Code.push_back(I);
    return Cur->Code.back();
  }
  TInstr make(TOp Op, ExpCat Cat = ExpCat::Base) {
    TInstr I;
    I.Op = Op;
    I.Cat = Cat;
    return I;
  }
  void startRegion(uint32_t VmStart) {
    Regions.push_back(Region());
    Regions.back().VmStart = VmStart;
    Cur = &Regions.back();
  }

  void computeLabels();
  void setupRegisterMaps();
  void emitPrologue();
  void expand(uint32_t VmIdx, const vm::Instr &I);

  // --- risc helpers ----------------------------------------------------
  bool fitsImm(int64_t V, bool Logical) const;
  /// Materializes \p V into \p Reg. First instruction gets \p FirstCat,
  /// later ones Ldi.
  void synthImm(uint32_t V, unsigned Reg, ExpCat FirstCat,
                ExpCat LoCat = ExpCat::Ldi);
  /// hi/lo split for "LoadImmHi + signed lo offset" addressing.
  void hiLoSplit(uint32_t V, uint32_t &Hi, int32_t &Lo) const;

  // VM register mapping (RISC targets: all mapped; x86: some in memory).
  int IntMap[16];
  int FpMap[16];
  /// Reads VM int register into a real register (x86 may emit a load into
  /// \p Scratch). Returns the register.
  unsigned readInt(unsigned VmReg, unsigned Scratch);
  unsigned readFp(unsigned VmReg, unsigned Scratch);
  /// Target register to compute VM dest into (scratch when memory-mapped);
  /// call writeInt/writeFp afterwards.
  unsigned destInt(unsigned VmReg, unsigned Scratch) {
    int M = IntMap[VmReg];
    return M >= 0 ? static_cast<unsigned>(M) : Scratch;
  }
  unsigned destFp(unsigned VmReg, unsigned Scratch) {
    int M = FpMap[VmReg];
    return M >= 0 ? static_cast<unsigned>(M) : Scratch;
  }
  void writeInt(unsigned VmReg, unsigned FromReg);
  void writeFp(unsigned VmReg, unsigned FromReg, bool F64);
  bool intInMemory(unsigned VmReg) const { return IntMap[VmReg] < 0; }

  uint32_t intSlotAddr(unsigned VmReg) const {
    return Out.IntSlotBase + 4 * VmReg;
  }
  uint32_t fpSlotAddr(unsigned VmReg) const {
    return Out.FpSlotBase + 8 * VmReg;
  }

  // --- per-construct expansion ----------------------------------------
  void expandAlu(const vm::Instr &I);
  void expandMem(const vm::Instr &I);
  void expandBranch(const vm::Instr &I);
  void expandFpBranch(const vm::Instr &I);
  void expandCall(const vm::Instr &I);
  void expandExtIns(const vm::Instr &I);
  /// Emits the mandatory delay-slot nop after a control transfer.
  void emitSlotNop() {
    if (TI.HasDelaySlot)
      emit(make(TOp::Nop, ExpCat::Bnop));
  }
  /// Emits SFI sandboxing for an indirect jump through \p Reg.
  void emitJumpSandbox(unsigned Reg);
  /// Sandboxes the dedicated stack pointer after any instruction that
  /// wrote it (the discipline that lets sp-relative accesses go
  /// unchecked).
  void emitSpSandbox(unsigned VmDestReg);

  /// Finds the code generator's 4-instruction compare-to-value idiom
  /// (bcc/li 0/j/li 1); with CcSelection the translator re-selects it as a
  /// single set-condition instruction (MIPS slt / x86 setcc).
  void findSetCondIdioms();
  void expandSetCondIdiom(uint32_t Idx);

  TargetKind Kind;
  const TargetInfo &TI;
  const vm::Module &Exe;
  TranslateOptions Opts;
  SegmentLayout Seg;
  TargetCode &Out;

  std::vector<Region> Regions;
  Region *Cur = nullptr;
  int32_t CurVmIndex = -1;
  std::set<uint32_t> Labels;
  std::set<uint32_t> SetCondIdioms;
  bool UseGp = false; ///< SPARC global-pointer optimization active
};

//===----------------------------------------------------------------------===//
// Setup
//===----------------------------------------------------------------------===//

void TranslatorImpl::computeLabels() {
  Labels.insert(Exe.EntryIndex);
  for (uint32_t Idx = 0; Idx < Exe.Code.size(); ++Idx) {
    const vm::Instr &I = Exe.Code[Idx];
    vm::OpSig Sig = vm::getOpcodeInfo(I.Op).Sig;
    // Branches internal to a recognized set-condition idiom do not create
    // labels; the whole idiom becomes one instruction.
    if (SetCondIdioms.count(Idx) || (Idx >= 2 && SetCondIdioms.count(Idx - 2)))
      continue;
    if (Sig == vm::OpSig::Br || Sig == vm::OpSig::FBr ||
        Sig == vm::OpSig::Jmp)
      Labels.insert(static_cast<uint32_t>(I.Target));
    // Return points of calls are indirect-jump targets.
    if (I.Op == Opcode::Jal || I.Op == Opcode::Jalr)
      Labels.insert(Idx + 1);
  }
  // Exported code symbols can be reached through function pointers.
  for (const vm::ExportEntry &E : Exe.Exports)
    if (E.Kind == vm::Symbol::Code)
      Labels.insert(E.Value);
  // Drop idioms whose interior is independently reachable.
  for (auto It = SetCondIdioms.begin(); It != SetCondIdioms.end();) {
    uint32_t S = *It;
    if (Labels.count(S + 1) || Labels.count(S + 2) || Labels.count(S + 3)) {
      Labels.insert(static_cast<uint32_t>(Exe.Code[S].Target));
      Labels.insert(static_cast<uint32_t>(Exe.Code[S + 2].Target));
      It = SetCondIdioms.erase(It);
    } else {
      ++It;
    }
  }
}

void TranslatorImpl::findSetCondIdioms() {
  // Direct set-condition selection exists on MIPS (slt) and x86 (setcc);
  // PPC uses record forms instead (see foldRecordForms).
  if (Kind != TargetKind::Mips && Kind != TargetKind::X86)
    return;
  for (uint32_t Idx = 0; Idx + 3 < Exe.Code.size(); ++Idx) {
    const vm::Instr &Br = Exe.Code[Idx];
    if (vm::getOpcodeInfo(Br.Op).Sig != vm::OpSig::Br)
      continue;
    if (Br.Target != static_cast<int32_t>(Idx) + 3)
      continue;
    const vm::Instr &Li0 = Exe.Code[Idx + 1];
    const vm::Instr &Jmp = Exe.Code[Idx + 2];
    const vm::Instr &Li1 = Exe.Code[Idx + 3];
    if (Li0.Op != Opcode::Li || Li0.Imm != 0 || Li1.Op != Opcode::Li ||
        Li1.Imm != 1 || Li0.Rd != Li1.Rd || Jmp.Op != Opcode::J ||
        Jmp.Target != static_cast<int32_t>(Idx) + 4)
      continue;
    SetCondIdioms.insert(Idx);
  }
}

void TranslatorImpl::expandSetCondIdiom(uint32_t Idx) {
  const vm::Instr &Br = Exe.Code[Idx];
  unsigned Dest = Exe.Code[Idx + 1].Rd;
  CurVmIndex = static_cast<int32_t>(Idx);
  ir::Cond Cc;
  switch (Br.Op) {
  case Opcode::Beq:
    Cc = ir::Cond::Eq;
    break;
  case Opcode::Bne:
    Cc = ir::Cond::Ne;
    break;
  case Opcode::Blt:
    Cc = ir::Cond::Lt;
    break;
  case Opcode::Ble:
    Cc = ir::Cond::Le;
    break;
  case Opcode::Bgt:
    Cc = ir::Cond::Gt;
    break;
  case Opcode::Bge:
    Cc = ir::Cond::Ge;
    break;
  case Opcode::Bltu:
    Cc = ir::Cond::LtU;
    break;
  case Opcode::Bleu:
    Cc = ir::Cond::LeU;
    break;
  case Opcode::Bgtu:
    Cc = ir::Cond::GtU;
    break;
  default:
    Cc = ir::Cond::GeU;
    break;
  }
  unsigned A = readInt(Br.Rs1, TI.ScratchA);
  unsigned D = destInt(Dest, TI.ScratchB);
  TInstr Set = make(TOp::SetCond, ExpCat::Base);
  Set.Cc = Cc;
  Set.Rd = D;
  Set.Rs1 = A;
  if (Br.UsesImm) {
    Set.UsesImm = true;
    Set.Imm = Br.Imm;
  } else {
    Set.Rs2 = readInt(Br.Rs2, TI.ScratchB);
  }
  emit(Set);
  writeInt(Dest, D);
  emitSpSandbox(Dest);
}

void TranslatorImpl::setupRegisterMaps() {
  for (int &M : IntMap)
    M = -1;
  for (int &M : FpMap)
    M = -1;
  Out.IntSlotBase = Seg.Base + Seg.Size - IntSlotsOffset;
  Out.FpSlotBase = Seg.Base + Seg.Size - FpSlotsOffset;

  switch (Kind) {
  case TargetKind::Mips:
    // vm r0-r12 -> $8..$20, sp -> $29, r14 -> $21, ra -> $31.
    for (unsigned I = 0; I <= 12; ++I)
      IntMap[I] = 8 + static_cast<int>(I);
    IntMap[vm::RegSp] = 29;
    IntMap[14] = 21;
    IntMap[vm::RegRa] = 31;
    for (unsigned I = 0; I < 16; ++I)
      FpMap[I] = static_cast<int>(I);
    break;
  case TargetKind::Sparc:
    // vm r0-r12 -> %l0-%l7,%i0-%i4; sp -> %o6; r14 -> %i5; ra -> %o7.
    for (unsigned I = 0; I <= 12; ++I)
      IntMap[I] = 16 + static_cast<int>(I);
    IntMap[vm::RegSp] = 14;
    IntMap[14] = 29;
    IntMap[vm::RegRa] = 15;
    for (unsigned I = 0; I < 16; ++I)
      FpMap[I] = static_cast<int>(I);
    break;
  case TargetKind::Ppc:
    // vm r0-r12 -> r13-r25; sp -> r1; r14 -> r26; ra -> r27.
    for (unsigned I = 0; I <= 12; ++I)
      IntMap[I] = 13 + static_cast<int>(I);
    IntMap[vm::RegSp] = 1;
    IntMap[14] = 26;
    IntMap[vm::RegRa] = 27;
    for (unsigned I = 0; I < 16; ++I)
      FpMap[I] = static_cast<int>(I);
    break;
  case TargetKind::X86:
    // Six OmniVM registers live in real registers; the rest are memory
    // slots ("on the x86, some registers are mapped to memory locations").
    IntMap[0] = 0;  // eax
    IntMap[1] = 1;  // ecx
    IntMap[2] = 2;  // edx
    IntMap[3] = 3;  // ebx
    IntMap[14] = 5; // ebp (the code generator's hot scratch register)
    IntMap[vm::RegSp] = 4; // esp
    // vm f0-f5 in st0-st5; f14/f15 in st6/st7; f6-f13 in memory.
    for (unsigned I = 0; I <= 5; ++I)
      FpMap[I] = static_cast<int>(I);
    FpMap[14] = 6;
    FpMap[15] = 7;
    break;
  }
}

bool TranslatorImpl::fitsImm(int64_t V, bool Logical) const {
  switch (Kind) {
  case TargetKind::X86:
    return true;
  case TargetKind::Sparc:
    return V >= -4096 && V <= 4095;
  case TargetKind::Mips:
  case TargetKind::Ppc:
    if (Logical)
      return V >= 0 && V <= 0xffff;
    return V >= -32768 && V <= 32767;
  }
  return false;
}

void TranslatorImpl::hiLoSplit(uint32_t V, uint32_t &Hi, int32_t &Lo) const {
  if (Kind == TargetKind::Sparc) {
    Hi = V & ~0x3ffu;
    Lo = static_cast<int32_t>(V & 0x3ffu);
    return;
  }
  // 16-bit signed low part: round the high part so lo is in [-32768,32767].
  Hi = (V + 0x8000u) & 0xffff0000u;
  Lo = static_cast<int32_t>(V - Hi);
}

void TranslatorImpl::synthImm(uint32_t V, unsigned Reg, ExpCat FirstCat,
                              ExpCat LoCat) {
  if (Kind == TargetKind::X86 ||
      fitsImm(static_cast<int32_t>(V), /*Logical=*/false)) {
    TInstr I = make(TOp::MovImm, FirstCat);
    I.Rd = Reg;
    I.Imm = static_cast<int32_t>(V);
    emit(I);
    return;
  }
  uint32_t Hi;
  int32_t Lo;
  if (Kind == TargetKind::Sparc) {
    Hi = V & ~0x3ffu;
    Lo = static_cast<int32_t>(V & 0x3ffu);
  } else {
    Hi = V & 0xffff0000u;
    Lo = static_cast<int32_t>(V & 0xffffu);
  }
  TInstr HiI = make(TOp::LoadImmHi, FirstCat);
  HiI.Rd = Reg;
  HiI.Imm = static_cast<int32_t>(Hi);
  emit(HiI);
  if (Lo != 0) {
    TInstr LoI = make(TOp::OrImmLo, LoCat);
    LoI.Rd = Reg;
    LoI.Rs1 = Reg;
    LoI.Imm = Lo;
    emit(LoI);
  }
}

unsigned TranslatorImpl::readInt(unsigned VmReg, unsigned Scratch) {
  int M = IntMap[VmReg];
  if (M >= 0)
    return static_cast<unsigned>(M);
  TInstr L = make(TOp::Load, ExpCat::Other);
  L.Rd = Scratch;
  L.Mode = AddrMode::Abs;
  L.Imm = static_cast<int32_t>(intSlotAddr(VmReg));
  L.Width = ir::MemWidth::W32;
  emit(L);
  return Scratch;
}

unsigned TranslatorImpl::readFp(unsigned VmReg, unsigned Scratch) {
  int M = FpMap[VmReg];
  if (M >= 0)
    return static_cast<unsigned>(M);
  TInstr L = make(TOp::Load, ExpCat::Other);
  L.Rd = Scratch;
  L.Mode = AddrMode::Abs;
  L.Imm = static_cast<int32_t>(fpSlotAddr(VmReg));
  L.Width = ir::MemWidth::F64;
  L.FpVal = true;
  emit(L);
  return Scratch;
}

void TranslatorImpl::writeInt(unsigned VmReg, unsigned FromReg) {
  int M = IntMap[VmReg];
  if (M >= 0) {
    assert(static_cast<unsigned>(M) == FromReg && "dest mapping mismatch");
    return;
  }
  TInstr S = make(TOp::Store, ExpCat::Other);
  S.Rd = FromReg;
  S.Mode = AddrMode::Abs;
  S.Imm = static_cast<int32_t>(intSlotAddr(VmReg));
  S.Width = ir::MemWidth::W32;
  emit(S);
}

void TranslatorImpl::writeFp(unsigned VmReg, unsigned FromReg, bool F64) {
  int M = FpMap[VmReg];
  if (M >= 0) {
    assert(static_cast<unsigned>(M) == FromReg && "dest mapping mismatch");
    return;
  }
  (void)F64;
  TInstr S = make(TOp::Store, ExpCat::Other);
  S.Rd = FromReg;
  S.Mode = AddrMode::Abs;
  S.Imm = static_cast<int32_t>(fpSlotAddr(VmReg));
  S.Width = ir::MemWidth::F64;
  S.FpVal = true;
  emit(S);
}

void TranslatorImpl::emitPrologue() {
  startRegion(~0u);
  CurVmIndex = -1;
  if (Opts.Sfi && Kind != TargetKind::X86) {
    synthImm(Seg.Size - 1, TI.SfiMaskReg, ExpCat::Other);
    synthImm(Seg.Base, TI.SfiBaseReg, ExpCat::Other);
    // SFI optimizer hold register: start it at the segment base so it is
    // in-segment on every path, even ones that never reach a preheader.
    // This is the sficheck Held discipline's induction base.
    if (Opts.SfiOptimize && TI.SfiHoldReg >= 0)
      synthImm(Seg.Base, static_cast<unsigned>(TI.SfiHoldReg),
               ExpCat::Other);
  }
  if (UseGp)
    synthImm(Seg.Base, TI.GlobalPtrReg, ExpCat::Other);
  TInstr B = make(TOp::Branch, ExpCat::Other);
  B.Target = static_cast<int32_t>(Exe.EntryIndex); // VM target; fixed later
  emit(B);
  emitSlotNop();
}

//===----------------------------------------------------------------------===//
// Expansion
//===----------------------------------------------------------------------===//

void TranslatorImpl::expandAlu(const vm::Instr &I) {
  TOp Op;
  bool Logical = false;
  switch (I.Op) {
  case Opcode::Add:
    Op = TOp::Add;
    break;
  case Opcode::Sub:
    Op = TOp::Sub;
    break;
  case Opcode::Mul:
    Op = TOp::Mul;
    break;
  case Opcode::Div:
    Op = TOp::Div;
    break;
  case Opcode::DivU:
    Op = TOp::DivU;
    break;
  case Opcode::Rem:
    Op = TOp::Rem;
    break;
  case Opcode::RemU:
    Op = TOp::RemU;
    break;
  case Opcode::And:
    Op = TOp::And;
    Logical = true;
    break;
  case Opcode::Or:
    Op = TOp::Or;
    Logical = true;
    break;
  case Opcode::Xor:
    Op = TOp::Xor;
    Logical = true;
    break;
  case Opcode::Sll:
    Op = TOp::Shl;
    break;
  case Opcode::Srl:
    Op = TOp::ShrL;
    break;
  default:
    Op = TOp::ShrA;
    break;
  }

  unsigned A = readInt(I.Rs1, TI.ScratchA);
  bool IsMulDiv = Op == TOp::Mul || Op == TOp::Div || Op == TOp::DivU ||
                  Op == TOp::Rem || Op == TOp::RemU;
  bool IsShift = Op == TOp::Shl || Op == TOp::ShrL || Op == TOp::ShrA;

  // Second operand.
  bool UseImm = false;
  int32_t Imm = 0;
  unsigned B = 0;
  bool BMem = false;
  uint32_t BMemAddr = 0;
  if (I.UsesImm) {
    bool ImmOk = IsShift || fitsImm(I.Imm, Logical);
    if (IsMulDiv && Kind != TargetKind::X86 &&
        !(Kind == TargetKind::Ppc && Op == TOp::Mul && fitsImm(I.Imm, false)))
      ImmOk = false; // RISC mul/div want registers (PPC has mulli)
    if (ImmOk && Kind == TargetKind::X86 && IsShift) {
      UseImm = true;
      Imm = I.Imm;
    } else if (ImmOk) {
      UseImm = true;
      Imm = I.Imm;
    } else {
      synthImm(static_cast<uint32_t>(I.Imm), TI.ScratchB, ExpCat::Ldi);
      B = TI.ScratchB;
    }
  } else if (Kind == TargetKind::X86 && intInMemory(I.Rs2)) {
    BMem = true;
    BMemAddr = intSlotAddr(I.Rs2);
  } else {
    B = readInt(I.Rs2, TI.ScratchB);
  }

  // Remainder on SPARC/PPC: div, mul, sub sequence.
  if ((Op == TOp::Rem || Op == TOp::RemU) &&
      (Kind == TargetKind::Sparc || Kind == TargetKind::Ppc)) {
    assert(!UseImm && !BMem);
    TOp DivOp = Op == TOp::Rem ? TOp::Div : TOp::DivU;
    TInstr DivI = make(DivOp, ExpCat::Base);
    DivI.Rd = TI.ScratchA;
    DivI.Rs1 = A;
    DivI.Rs2 = B;
    emit(DivI);
    TInstr MulI = make(TOp::Mul, ExpCat::Other);
    MulI.Rd = TI.ScratchA;
    MulI.Rs1 = TI.ScratchA;
    MulI.Rs2 = B;
    emit(MulI);
    unsigned D = destInt(I.Rd, TI.ScratchB);
    TInstr SubI = make(TOp::Sub, ExpCat::Other);
    SubI.Rd = D;
    SubI.Rs1 = A;
    SubI.Rs2 = TI.ScratchA;
    emit(SubI);
    writeInt(I.Rd, D);
    emitSpSandbox(I.Rd);
    return;
  }

  unsigned D = destInt(I.Rd, TI.ScratchA);
  if (TI.TwoAddressAlu) {
    // x86 form: dst must equal first source. When dst aliases the second
    // source, either swap (commutative) or save it to a scratch first.
    if (!UseImm && !BMem && D != A && D == B) {
      bool Commutative = Op == TOp::Add || Op == TOp::And ||
                         Op == TOp::Or || Op == TOp::Xor || Op == TOp::Mul;
      if (Commutative) {
        std::swap(A, B);
      } else {
        unsigned Save = D == TI.ScratchB ? TI.ScratchA : TI.ScratchB;
        TInstr Sv = make(TOp::MovReg, ExpCat::Other);
        Sv.Rd = Save;
        Sv.Rs1 = B;
        emit(Sv);
        B = Save;
      }
    }
    if (D != A) {
      TInstr Mv = make(TOp::MovReg, ExpCat::Other);
      Mv.Rd = D;
      Mv.Rs1 = A;
      emit(Mv);
    }
    TInstr AluI = make(Op, ExpCat::Base);
    AluI.Rd = D;
    AluI.Rs1 = D;
    if (BMem) {
      AluI.MemOperand = true;
      AluI.Mode = AddrMode::Abs;
      AluI.Imm = static_cast<int32_t>(BMemAddr);
    } else if (UseImm) {
      AluI.UsesImm = true;
      AluI.Imm = Imm;
    } else {
      AluI.Rs2 = B;
    }
    emit(AluI);
    writeInt(I.Rd, D);
    emitSpSandbox(I.Rd);
    return;
  }

  TInstr AluI = make(Op, ExpCat::Base);
  AluI.Rd = D;
  AluI.Rs1 = A;
  if (UseImm) {
    AluI.UsesImm = true;
    AluI.Imm = Imm;
  } else {
    AluI.Rs2 = B;
  }
  emit(AluI);
  writeInt(I.Rd, D);

  emitSpSandbox(I.Rd);
}

void TranslatorImpl::emitSpSandbox(unsigned VmDestReg) {
  // Stack-pointer discipline: any update of the dedicated sp register is
  // sandboxed so that sp-relative accesses can go unchecked (expandMem).
  if (!Opts.Sfi || Kind == TargetKind::X86 || VmDestReg != vm::RegSp)
    return;
  unsigned D = static_cast<unsigned>(IntMap[vm::RegSp]);
  TInstr AndI = make(TOp::And, ExpCat::Sfi);
  AndI.Rd = D;
  AndI.Rs1 = D;
  AndI.Rs2 = TI.SfiMaskReg;
  emit(AndI);
  TInstr OrI = make(TOp::Or, ExpCat::Sfi);
  OrI.Rd = D;
  OrI.Rs1 = D;
  OrI.Rs2 = TI.SfiBaseReg;
  emit(OrI);
}

void TranslatorImpl::expandMem(const vm::Instr &I) {
  bool IsLoad = I.isLoad();
  bool Fp = I.Op == Opcode::Lfs || I.Op == Opcode::Lfd ||
            I.Op == Opcode::Sfs || I.Op == Opcode::Sfd;
  ir::MemWidth Width;
  bool Signed = true;
  switch (I.Op) {
  case Opcode::Lb:
    Width = ir::MemWidth::W8;
    break;
  case Opcode::Lbu:
    Width = ir::MemWidth::W8;
    Signed = false;
    break;
  case Opcode::Lh:
    Width = ir::MemWidth::W16;
    break;
  case Opcode::Lhu:
    Width = ir::MemWidth::W16;
    Signed = false;
    break;
  case Opcode::Sb:
    Width = ir::MemWidth::W8;
    break;
  case Opcode::Sh:
    Width = ir::MemWidth::W16;
    break;
  case Opcode::Lfs:
  case Opcode::Sfs:
    Width = ir::MemWidth::F32;
    break;
  case Opcode::Lfd:
  case Opcode::Sfd:
    Width = ir::MemWidth::F64;
    break;
  default:
    Width = ir::MemWidth::W32;
    break;
  }

  bool IsAbs = I.Rs1 == vm::NoBaseReg;
  bool Indexed = !I.UsesImm;
  bool NeedSfi = Opts.Sfi && (!IsLoad || Opts.SfiReads) &&
                 Kind != TargetKind::X86 && !IsAbs;
  // Dedicated-register stack discipline (Wahbe et al.): the stack pointer
  // is kept inside the segment by sandboxing *updates* of it (see
  // expandAlu), so small sp-relative accesses need no per-access check —
  // a guard zone covers the offset. This is what keeps SFI near 10%.
  if (NeedSfi && !Indexed && I.Rs1 == vm::RegSp && I.Imm >= 0 &&
      static_cast<uint32_t>(I.Imm) + ir::memWidthBytes(Width) <=
          vm::GuardZoneSize)
    NeedSfi = false;

  // On x86, a store whose value, base and index all live in memory slots
  // would need three scratches; collapse base+index into one register
  // first (lea) so the value can use the other scratch.
  unsigned PrecomputedBase = ~0u;
  if (Kind == TargetKind::X86 && !IsLoad && Indexed && !IsAbs &&
      intInMemory(I.Rd)) {
    unsigned B0 = readInt(I.Rs1, TI.ScratchB);
    unsigned X0 = readInt(I.Rs2, B0 == TI.ScratchB ? TI.ScratchA
                                                   : TI.ScratchB);
    TInstr LeaI = make(TOp::Lea, ExpCat::Other);
    LeaI.Rd = TI.ScratchB;
    LeaI.Rs1 = B0;
    LeaI.Rs2 = X0;
    LeaI.Mode = AddrMode::BaseIndex;
    emit(LeaI);
    PrecomputedBase = TI.ScratchB;
    Indexed = false;
  }

  // Value register. For stores, the value is read after address operands
  // are in place (see PrecomputedBase above for the x86 conflict case).
  unsigned ValReg;
  if (IsLoad) {
    ValReg = Fp ? destFp(I.Rd, Kind == TargetKind::X86 ? 6 : 0)
                : destInt(I.Rd, TI.ScratchA);
  } else {
    ValReg = Fp ? readFp(I.Rd, Kind == TargetKind::X86 ? 6 : 0)
                : readInt(I.Rd, TI.ScratchA);
  }

  TInstr M = make(IsLoad ? TOp::Load : TOp::Store, ExpCat::Base);
  M.Rd = ValReg;
  M.Width = Width;
  M.SignedLoad = Signed;
  M.FpVal = Fp;

  if (IsAbs) {
    uint32_t Addr = static_cast<uint32_t>(I.Imm);
    if (Kind == TargetKind::X86) {
      M.Mode = AddrMode::Abs;
      M.Imm = I.Imm;
      emit(M);
    } else if (UseGp) {
      int64_t Delta = static_cast<int64_t>(Addr) -
                      static_cast<int64_t>(Seg.Base);
      if (fitsImm(Delta, false)) {
        M.Mode = AddrMode::BaseImm;
        M.Rs1 = TI.GlobalPtrReg;
        M.Imm = static_cast<int32_t>(Delta);
        emit(M);
      } else {
        uint32_t Hi;
        int32_t Lo;
        hiLoSplit(Addr, Hi, Lo);
        TInstr HiI = make(TOp::LoadImmHi, ExpCat::Ldi);
        HiI.Rd = TI.ScratchA;
        HiI.Imm = static_cast<int32_t>(Hi);
        emit(HiI);
        M.Mode = AddrMode::BaseImm;
        M.Rs1 = TI.ScratchA;
        M.Imm = Lo;
        emit(M);
      }
    } else {
      uint32_t Hi;
      int32_t Lo;
      hiLoSplit(Addr, Hi, Lo);
      TInstr HiI = make(TOp::LoadImmHi, ExpCat::Ldi);
      HiI.Rd = TI.ScratchA;
      HiI.Imm = static_cast<int32_t>(Hi);
      emit(HiI);
      M.Mode = AddrMode::BaseImm;
      M.Rs1 = TI.ScratchA;
      M.Imm = Lo;
      emit(M);
    }
    if (IsLoad) {
      if (Fp)
        writeFp(I.Rd, ValReg, Width == ir::MemWidth::F64);
      else
        writeInt(I.Rd, ValReg);
      if (!Fp)
        emitSpSandbox(I.Rd);
    }
    return;
  }

  unsigned Base = PrecomputedBase != ~0u ? PrecomputedBase
                                          : readInt(I.Rs1, TI.ScratchB);
  unsigned Index = 0;
  if (Indexed)
    Index = readInt(I.Rs2, Base == TI.ScratchB ? TI.ScratchA
                                               : TI.ScratchB);

  if (!NeedSfi) {
    if (Indexed) {
      if (TI.HasIndexedAddr) {
        M.Mode = AddrMode::BaseIndex;
        M.Rs1 = Base;
        M.Rs2 = Index;
        emit(M);
      } else {
        // MIPS: explicit add ("addr" expansion of the paper).
        TInstr AddI = make(TOp::Add, ExpCat::Addr);
        AddI.Rd = TI.ScratchA;
        AddI.Rs1 = Base;
        AddI.Rs2 = Index;
        emit(AddI);
        M.Mode = AddrMode::BaseImm;
        M.Rs1 = TI.ScratchA;
        M.Imm = 0;
        emit(M);
      }
    } else if (fitsImm(I.Imm, false)) {
      M.Mode = AddrMode::BaseImm;
      M.Rs1 = Base;
      M.Imm = I.Imm;
      emit(M);
    } else {
      // Large offset: hi into scratch, add base, lo in the access.
      uint32_t Hi;
      int32_t Lo;
      hiLoSplit(static_cast<uint32_t>(I.Imm), Hi, Lo);
      TInstr HiI = make(TOp::LoadImmHi, ExpCat::Ldi);
      HiI.Rd = TI.ScratchA;
      HiI.Imm = static_cast<int32_t>(Hi);
      emit(HiI);
      TInstr AddI = make(TOp::Add, ExpCat::Addr);
      AddI.Rd = TI.ScratchA;
      AddI.Rs1 = TI.ScratchA;
      AddI.Rs2 = Base;
      emit(AddI);
      M.Mode = AddrMode::BaseImm;
      M.Rs1 = TI.ScratchA;
      M.Imm = Lo;
      emit(M);
    }
    if (IsLoad) {
      if (Fp)
        writeFp(I.Rd, ValReg, Width == ir::MemWidth::F64);
      else
        writeInt(I.Rd, ValReg);
      if (!Fp)
        emitSpSandbox(I.Rd);
    }
    return;
  }

  // SFI-sandboxed access (MIPS/SPARC/PPC).
  unsigned Ea = Base;
  if (Indexed) {
    // Category audit: on MIPS this add exists with SFI off too (no
    // indexed addressing -> "addr" expansion); on SPARC/PPC the hardware
    // addressing mode would have absorbed it, so the add only exists to
    // feed the mask -> "sfi". The ternary is attribution, not a bug.
    TInstr AddI = make(TOp::Add,
                       TI.HasIndexedAddr ? ExpCat::Sfi : ExpCat::Addr);
    AddI.Rd = TI.SfiAddrReg;
    AddI.Rs1 = Base;
    AddI.Rs2 = Index;
    emit(AddI);
    Ea = TI.SfiAddrReg;
  } else if (I.Imm != 0) {
    if (fitsImm(I.Imm, false)) {
      TInstr AddI = make(TOp::Add, ExpCat::Sfi);
      AddI.Rd = TI.SfiAddrReg;
      AddI.Rs1 = Base;
      AddI.UsesImm = true;
      AddI.Imm = I.Imm;
      emit(AddI);
    } else {
      // The non-SFI path folds the low half into the access itself; with
      // SFI the access must be [S+0], so the extra OrImmLo materializing
      // the low half exists only because of sandboxing -> tag it Sfi
      // (the LoadImmHi is needed either way and stays Ldi).
      synthImm(static_cast<uint32_t>(I.Imm), TI.ScratchA, ExpCat::Ldi,
               ExpCat::Sfi);
      TInstr AddI = make(TOp::Add, ExpCat::Addr);
      AddI.Rd = TI.SfiAddrReg;
      AddI.Rs1 = Base;
      AddI.Rs2 = TI.ScratchA;
      emit(AddI);
    }
    Ea = TI.SfiAddrReg;
  }
  // Mask the offset bits.
  TInstr AndI = make(TOp::And, ExpCat::Sfi);
  AndI.Rd = TI.SfiAddrReg;
  AndI.Rs1 = Ea;
  AndI.Rs2 = TI.SfiMaskReg;
  emit(AndI);
  if (Kind == TargetKind::Ppc) {
    // Indexed store through the segment-base register: one instruction
    // shorter than the or+store sequence (the paper's PPC observation).
    M.Mode = AddrMode::BaseIndex;
    M.Rs1 = TI.SfiAddrReg;
    M.Rs2 = TI.SfiBaseReg;
    emit(M);
  } else {
    TInstr OrI = make(TOp::Or, ExpCat::Sfi);
    OrI.Rd = TI.SfiAddrReg;
    OrI.Rs1 = TI.SfiAddrReg;
    OrI.Rs2 = TI.SfiBaseReg;
    emit(OrI);
    M.Mode = AddrMode::BaseImm;
    M.Rs1 = TI.SfiAddrReg;
    M.Imm = 0;
    emit(M);
  }
}

void TranslatorImpl::expandBranch(const vm::Instr &I) {
  ir::Cond Cc;
  switch (I.Op) {
  case Opcode::Beq:
    Cc = ir::Cond::Eq;
    break;
  case Opcode::Bne:
    Cc = ir::Cond::Ne;
    break;
  case Opcode::Blt:
    Cc = ir::Cond::Lt;
    break;
  case Opcode::Ble:
    Cc = ir::Cond::Le;
    break;
  case Opcode::Bgt:
    Cc = ir::Cond::Gt;
    break;
  case Opcode::Bge:
    Cc = ir::Cond::Ge;
    break;
  case Opcode::Bltu:
    Cc = ir::Cond::LtU;
    break;
  case Opcode::Bleu:
    Cc = ir::Cond::LeU;
    break;
  case Opcode::Bgtu:
    Cc = ir::Cond::GtU;
    break;
  default:
    Cc = ir::Cond::GeU;
    break;
  }
  unsigned A = readInt(I.Rs1, TI.ScratchA);

  if (TI.HasCmpBranch) {
    // MIPS: beq/bne take two registers; the relationals compare against
    // zero only; anything else needs slt (cmp) and/or an immediate load
    // (ldi), exactly the paper's expansion buckets.
    bool IsEq = Cc == ir::Cond::Eq || Cc == ir::Cond::Ne;
    if (IsEq) {
      unsigned B;
      if (I.UsesImm) {
        if (I.Imm == 0) {
          B = TI.ZeroReg;
        } else {
          synthImm(static_cast<uint32_t>(I.Imm), TI.ScratchB, ExpCat::Ldi);
          B = TI.ScratchB;
        }
      } else {
        B = readInt(I.Rs2, TI.ScratchB);
      }
      TInstr Br = make(TOp::CmpBranch, ExpCat::Base);
      Br.Cc = Cc;
      Br.Rs1 = A;
      Br.Rs2 = B;
      Br.Target = I.Target;
      emit(Br);
      emitSlotNop();
      return;
    }
    if (I.UsesImm && I.Imm == 0 &&
        (Cc == ir::Cond::Lt || Cc == ir::Cond::Le || Cc == ir::Cond::Gt ||
         Cc == ir::Cond::Ge)) {
      // bltz/blez/bgtz/bgez.
      TInstr Br = make(TOp::CmpBranch, ExpCat::Base);
      Br.Cc = Cc;
      Br.Rs1 = A;
      Br.Rs2 = TI.ZeroReg;
      Br.Target = I.Target;
      emit(Br);
      emitSlotNop();
      return;
    }
    // slt-based lowering.
    bool Unsigned = Cc == ir::Cond::LtU || Cc == ir::Cond::LeU ||
                    Cc == ir::Cond::GtU || Cc == ir::Cond::GeU;
    bool Swap = Cc == ir::Cond::Gt || Cc == ir::Cond::Le ||
                Cc == ir::Cond::GtU || Cc == ir::Cond::LeU;
    bool BranchOnSet = Cc == ir::Cond::Lt || Cc == ir::Cond::Gt ||
                       Cc == ir::Cond::LtU || Cc == ir::Cond::GtU;
    TInstr Set = make(TOp::SetCond, ExpCat::Cmp);
    Set.Cc = Unsigned ? ir::Cond::LtU : ir::Cond::Lt;
    Set.Rd = TI.ScratchA == A ? TI.ScratchB : TI.ScratchA;
    if (!Swap && I.UsesImm && fitsImm(I.Imm, false)) {
      Set.Rs1 = A;
      Set.UsesImm = true;
      Set.Imm = I.Imm;
    } else {
      unsigned B;
      if (I.UsesImm) {
        synthImm(static_cast<uint32_t>(I.Imm),
                 Set.Rd == TI.ScratchA ? TI.ScratchB : TI.ScratchA,
                 ExpCat::Ldi);
        B = Set.Rd == TI.ScratchA ? TI.ScratchB : TI.ScratchA;
      } else {
        B = readInt(I.Rs2, TI.ScratchB);
      }
      Set.Rs1 = Swap ? B : A;
      Set.Rs2 = Swap ? A : B;
    }
    emit(Set);
    TInstr Br = make(TOp::CmpBranch, ExpCat::Base);
    Br.Cc = BranchOnSet ? ir::Cond::Ne : ir::Cond::Eq;
    Br.Rs1 = Set.Rd;
    Br.Rs2 = TI.ZeroReg;
    Br.Target = I.Target;
    emit(Br);
    emitSlotNop();
    return;
  }

  // Condition-code targets: cmp (cat cmp) + bcc.
  TInstr CmpI = make(TOp::Cmp, ExpCat::Cmp);
  CmpI.Rs1 = A;
  if (I.UsesImm) {
    if (fitsImm(I.Imm, false)) {
      CmpI.UsesImm = true;
      CmpI.Imm = I.Imm;
    } else {
      synthImm(static_cast<uint32_t>(I.Imm), TI.ScratchB, ExpCat::Ldi);
      CmpI.Rs2 = TI.ScratchB;
    }
  } else if (Kind == TargetKind::X86 && intInMemory(I.Rs2)) {
    CmpI.MemOperand = true;
    CmpI.Mode = AddrMode::Abs;
    CmpI.Imm = static_cast<int32_t>(intSlotAddr(I.Rs2));
  } else {
    CmpI.Rs2 = readInt(I.Rs2, TI.ScratchB);
  }
  emit(CmpI);
  TInstr Br = make(TOp::BranchCC, ExpCat::Base);
  Br.Cc = Cc;
  Br.Target = I.Target;
  emit(Br);
  emitSlotNop();
}

void TranslatorImpl::expandFpBranch(const vm::Instr &I) {
  bool IsD = I.Op == Opcode::BfeqD || I.Op == Opcode::BfneD ||
             I.Op == Opcode::BfltD || I.Op == Opcode::BfleD;
  ir::Cond Cc;
  switch (I.Op) {
  case Opcode::BfeqS:
  case Opcode::BfeqD:
    Cc = ir::Cond::Eq;
    break;
  case Opcode::BfneS:
  case Opcode::BfneD:
    Cc = ir::Cond::Ne;
    break;
  case Opcode::BfltS:
  case Opcode::BfltD:
    Cc = ir::Cond::Lt;
    break;
  default:
    Cc = ir::Cond::Le;
    break;
  }
  unsigned A = readFp(I.Rs1, Kind == TargetKind::X86 ? 6 : 0);
  unsigned B = readFp(I.Rs2, Kind == TargetKind::X86 ? 7 : 1);
  TInstr CmpI = make(TOp::FCmp, ExpCat::Cmp);
  CmpI.Rs1 = A;
  CmpI.Rs2 = B;
  CmpI.Width = IsD ? ir::MemWidth::F64 : ir::MemWidth::F32;
  emit(CmpI);
  TInstr Br = make(TOp::FBranchCC, ExpCat::Base);
  Br.Cc = Cc;
  Br.Target = I.Target;
  emit(Br);
  emitSlotNop();
}

void TranslatorImpl::emitJumpSandbox(unsigned Reg) {
  if (!Opts.Sfi || Kind == TargetKind::X86)
    return;
  // Dynamic cost of sandboxing an indirect control transfer. The masked
  // value is computed into the dedicated register; containment itself is
  // enforced by the (modeled) code-segment mapping.
  TInstr AndI = make(TOp::And, ExpCat::Sfi);
  AndI.Rd = TI.SfiAddrReg;
  AndI.Rs1 = Reg;
  AndI.Rs2 = TI.SfiMaskReg;
  emit(AndI);
  if (Kind != TargetKind::Ppc) {
    TInstr OrI = make(TOp::Or, ExpCat::Sfi);
    OrI.Rd = TI.SfiAddrReg;
    OrI.Rs1 = TI.SfiAddrReg;
    OrI.Rs2 = TI.SfiBaseReg;
    emit(OrI);
  }
}

void TranslatorImpl::expandCall(const vm::Instr &I) {
  switch (I.Op) {
  case Opcode::J: {
    TInstr B = make(TOp::Branch, ExpCat::Base);
    B.Target = I.Target;
    emit(B);
    emitSlotNop();
    return;
  }
  case Opcode::Jal: {
    TInstr C = make(TOp::CallDirect, ExpCat::Base);
    C.Target = I.Target;
    if (!TI.LinkIsMemory)
      C.Rd = static_cast<unsigned>(IntMap[vm::RegRa]);
    else
      emit(make(TOp::Nop, ExpCat::Other)); // explicit link move on x86
    emit(C);
    emitSlotNop();
    return;
  }
  case Opcode::Jr:
  case Opcode::Jalr: {
    unsigned T = readInt(I.Rs1, TI.ScratchB);
    emitJumpSandbox(T);
    TInstr J = make(I.Op == Opcode::Jr ? TOp::JumpIndirect
                                       : TOp::CallIndirect,
                    ExpCat::Base);
    J.Rs1 = T;
    if (I.Op == Opcode::Jalr && !TI.LinkIsMemory)
      J.Rd = static_cast<unsigned>(IntMap[vm::RegRa]);
    emit(J);
    emitSlotNop();
    return;
  }
  default:
    assert(false);
  }
}

void TranslatorImpl::expandExtIns(const vm::Instr &I) {
  unsigned A = readInt(I.Rs1, TI.ScratchB);
  unsigned D = destInt(I.Rd, TI.ScratchA);
  bool IsByte = I.Op == Opcode::ExtB || I.Op == Opcode::InsB;
  unsigned Shift = IsByte ? 8 * (I.Imm & 3) : 16 * (I.Imm & 1);
  uint32_t Mask = IsByte ? 0xffu : 0xffffu;

  if (I.Op == Opcode::ExtB || I.Op == Opcode::ExtH) {
    TInstr Sr = make(TOp::ShrL, ExpCat::Base);
    Sr.Rd = D;
    Sr.Rs1 = A;
    Sr.UsesImm = true;
    Sr.Imm = static_cast<int32_t>(Shift);
    if (TI.TwoAddressAlu && D != A) {
      TInstr Mv = make(TOp::MovReg, ExpCat::Other);
      Mv.Rd = D;
      Mv.Rs1 = A;
      emit(Mv);
      Sr.Rs1 = D;
    }
    emit(Sr);
    TInstr AndI = make(TOp::And, ExpCat::Other);
    AndI.Rd = D;
    AndI.Rs1 = D;
    AndI.UsesImm = true;
    AndI.Imm = static_cast<int32_t>(Mask);
    emit(AndI);
    writeInt(I.Rd, D);
    // An extract can target the stack pointer (verifier-legal even if
    // unidiomatic); its bounded result still lands outside the segment,
    // so the dedicated-register discipline applies here too.
    emitSpSandbox(I.Rd);
    return;
  }

  // Insert: d = (d & ~(mask<<shift)) | ((a & mask) << shift).
  // d is read-modify-write; load current d when memory-mapped.
  unsigned DVal = readInt(I.Rd, TI.ScratchA);
  unsigned Tmp = TI.ScratchB == A ? TI.ScratchA : TI.ScratchB;
  if (Tmp == DVal)
    Tmp = TI.ScratchB;
  TInstr AndA = make(TOp::And, ExpCat::Base);
  AndA.Rd = Tmp;
  AndA.Rs1 = A;
  AndA.UsesImm = true;
  AndA.Imm = static_cast<int32_t>(Mask);
  if (TI.TwoAddressAlu && Tmp != A) {
    TInstr Mv = make(TOp::MovReg, ExpCat::Other);
    Mv.Rd = Tmp;
    Mv.Rs1 = A;
    emit(Mv);
    AndA.Rs1 = Tmp;
  }
  emit(AndA);
  if (Shift) {
    TInstr Sh = make(TOp::Shl, ExpCat::Other);
    Sh.Rd = Tmp;
    Sh.Rs1 = Tmp;
    Sh.UsesImm = true;
    Sh.Imm = static_cast<int32_t>(Shift);
    emit(Sh);
  }
  // Clear the field in d. ~(mask<<shift) rarely fits logical immediates;
  // synthesize when needed.
  uint32_t Clear = ~(Mask << Shift);
  TInstr AndD = make(TOp::And, ExpCat::Other);
  AndD.Rd = DVal;
  AndD.Rs1 = DVal;
  if (fitsImm(static_cast<int32_t>(Clear), true) ||
      Kind == TargetKind::X86) {
    AndD.UsesImm = true;
    AndD.Imm = static_cast<int32_t>(Clear);
  } else {
    unsigned MaskReg = Tmp == TI.ScratchA ? TI.ScratchB : TI.ScratchA;
    if (MaskReg == DVal || MaskReg == Tmp)
      MaskReg = TI.SfiAddrReg; // safe extra scratch on RISC targets
    synthImm(Clear, MaskReg, ExpCat::Ldi);
    AndD.Rs2 = MaskReg;
  }
  emit(AndD);
  TInstr OrI = make(TOp::Or, ExpCat::Other);
  OrI.Rd = DVal;
  OrI.Rs1 = DVal;
  OrI.Rs2 = Tmp;
  emit(OrI);
  writeInt(I.Rd, DVal);
  emitSpSandbox(I.Rd);
}

void TranslatorImpl::expand(uint32_t VmIdx, const vm::Instr &I) {
  CurVmIndex = static_cast<int32_t>(VmIdx);
  switch (I.Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::DivU:
  case Opcode::Rem:
  case Opcode::RemU:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Sll:
  case Opcode::Srl:
  case Opcode::Sra:
    expandAlu(I);
    return;
  case Opcode::Mov: {
    unsigned A = readInt(I.Rs1, TI.ScratchA);
    unsigned D = destInt(I.Rd, TI.ScratchA);
    if (D != A) {
      TInstr Mv = make(TOp::MovReg, ExpCat::Base);
      Mv.Rd = D;
      Mv.Rs1 = A;
      emit(Mv);
    }
    writeInt(I.Rd, D);
    emitSpSandbox(I.Rd);
    return;
  }
  case Opcode::Li: {
    unsigned D = destInt(I.Rd, TI.ScratchA);
    // Global-pointer optimization: values (typically addresses) near the
    // data-segment base materialize in one gp-relative add instead of a
    // sethi/or pair — the paper's SPARC gp win.
    int64_t Delta = static_cast<int64_t>(static_cast<uint32_t>(I.Imm)) -
                    static_cast<int64_t>(Seg.Base);
    if (UseGp && Delta >= 0 && fitsImm(Delta, false) &&
        !fitsImm(I.Imm, false)) {
      TInstr AddI = make(TOp::Add, ExpCat::Base);
      AddI.Rd = D;
      AddI.Rs1 = TI.GlobalPtrReg;
      AddI.UsesImm = true;
      AddI.Imm = static_cast<int32_t>(Delta);
      emit(AddI);
    } else {
      synthImm(static_cast<uint32_t>(I.Imm), D, ExpCat::Base);
    }
    writeInt(I.Rd, D);
    emitSpSandbox(I.Rd);
    return;
  }
  case Opcode::ExtB:
  case Opcode::ExtH:
  case Opcode::InsB:
  case Opcode::InsH:
    expandExtIns(I);
    return;
  case Opcode::Lb:
  case Opcode::Lbu:
  case Opcode::Lh:
  case Opcode::Lhu:
  case Opcode::Lw:
  case Opcode::Sb:
  case Opcode::Sh:
  case Opcode::Sw:
  case Opcode::Lfs:
  case Opcode::Lfd:
  case Opcode::Sfs:
  case Opcode::Sfd:
    expandMem(I);
    return;
  case Opcode::FAddS:
  case Opcode::FSubS:
  case Opcode::FMulS:
  case Opcode::FDivS:
  case Opcode::FAddD:
  case Opcode::FSubD:
  case Opcode::FMulD:
  case Opcode::FDivD: {
    bool IsD = I.Op == Opcode::FAddD || I.Op == Opcode::FSubD ||
               I.Op == Opcode::FMulD || I.Op == Opcode::FDivD;
    TOp Op = I.Op == Opcode::FAddS || I.Op == Opcode::FAddD ? TOp::FAdd
             : I.Op == Opcode::FSubS || I.Op == Opcode::FSubD ? TOp::FSub
             : I.Op == Opcode::FMulS || I.Op == Opcode::FMulD ? TOp::FMul
                                                               : TOp::FDiv;
    unsigned A = readFp(I.Rs1, Kind == TargetKind::X86 ? 6 : 0);
    unsigned B = readFp(I.Rs2, Kind == TargetKind::X86 ? 7 : 1);
    unsigned D = destFp(I.Rd, Kind == TargetKind::X86 ? 6 : 0);
    TInstr F = make(Op, ExpCat::Base);
    F.Rd = D;
    F.Rs1 = A;
    F.Rs2 = B;
    F.Width = IsD ? ir::MemWidth::F64 : ir::MemWidth::F32;
    emit(F);
    writeFp(I.Rd, D, IsD);
    return;
  }
  case Opcode::FNegS:
  case Opcode::FNegD:
  case Opcode::FMov: {
    bool IsD = I.Op != Opcode::FNegS;
    unsigned A = readFp(I.Rs1, Kind == TargetKind::X86 ? 6 : 0);
    unsigned D = destFp(I.Rd, Kind == TargetKind::X86 ? 6 : 0);
    if (I.Op == Opcode::FMov) {
      if (D != A || FpMap[I.Rd] < 0 || FpMap[I.Rs1] < 0) {
        TInstr Mv = make(TOp::FMov, ExpCat::Base);
        Mv.Rd = D;
        Mv.Rs1 = A;
        if (D != A)
          emit(Mv);
      }
    } else {
      TInstr Ng = make(TOp::FNeg, ExpCat::Base);
      Ng.Rd = D;
      Ng.Rs1 = A;
      Ng.Width = I.Op == Opcode::FNegD ? ir::MemWidth::F64
                                       : ir::MemWidth::F32;
      emit(Ng);
    }
    writeFp(I.Rd, D, IsD);
    return;
  }
  case Opcode::CvtWToS:
  case Opcode::CvtWToD: {
    unsigned A = readInt(I.Rs1, TI.ScratchA);
    unsigned D = destFp(I.Rd, Kind == TargetKind::X86 ? 6 : 0);
    TInstr C = make(TOp::CvtIntToFp, ExpCat::Base);
    C.Rd = D;
    C.Rs1 = A;
    C.Width = I.Op == Opcode::CvtWToD ? ir::MemWidth::F64
                                      : ir::MemWidth::F32;
    emit(C);
    if (Kind == TargetKind::Ppc) {
      // The 601 has no int->fp instruction: magic-number sequence.
      for (int K = 0; K < 3; ++K)
        emit(make(TOp::Nop, ExpCat::Other));
    }
    writeFp(I.Rd, D, I.Op == Opcode::CvtWToD);
    return;
  }
  case Opcode::CvtSToW:
  case Opcode::CvtDToW: {
    unsigned A = readFp(I.Rs1, Kind == TargetKind::X86 ? 6 : 0);
    unsigned D = destInt(I.Rd, TI.ScratchA);
    TInstr C = make(TOp::CvtFpToInt, ExpCat::Base);
    C.Rd = D;
    C.Rs1 = A;
    C.Width = I.Op == Opcode::CvtDToW ? ir::MemWidth::F64
                                      : ir::MemWidth::F32;
    emit(C);
    if (Kind == TargetKind::Ppc) {
      // fctiwz + store + reload on the 601.
      emit(make(TOp::Nop, ExpCat::Other));
      emit(make(TOp::Nop, ExpCat::Other));
    }
    writeInt(I.Rd, D);
    emitSpSandbox(I.Rd);
    return;
  }
  case Opcode::CvtSToD:
  case Opcode::CvtDToS: {
    unsigned A = readFp(I.Rs1, Kind == TargetKind::X86 ? 6 : 0);
    unsigned D = destFp(I.Rd, Kind == TargetKind::X86 ? 6 : 0);
    TInstr C = make(TOp::CvtFpToFp, ExpCat::Base);
    C.Rd = D;
    C.Rs1 = A;
    C.Width = I.Op == Opcode::CvtSToD ? ir::MemWidth::F64
                                      : ir::MemWidth::F32;
    emit(C);
    writeFp(I.Rd, D, I.Op == Opcode::CvtSToD);
    return;
  }
  case Opcode::Beq:
  case Opcode::Bne:
  case Opcode::Blt:
  case Opcode::Ble:
  case Opcode::Bgt:
  case Opcode::Bge:
  case Opcode::Bltu:
  case Opcode::Bleu:
  case Opcode::Bgtu:
  case Opcode::Bgeu:
    expandBranch(I);
    return;
  case Opcode::BfeqS:
  case Opcode::BfneS:
  case Opcode::BfltS:
  case Opcode::BfleS:
  case Opcode::BfeqD:
  case Opcode::BfneD:
  case Opcode::BfltD:
  case Opcode::BfleD:
    expandFpBranch(I);
    return;
  case Opcode::J:
  case Opcode::Jal:
  case Opcode::Jr:
  case Opcode::Jalr:
    expandCall(I);
    return;
  case Opcode::HCall: {
    TInstr H = make(TOp::HostCall, ExpCat::Base);
    H.Imm = I.Imm;
    emit(H);
    return;
  }
  case Opcode::Nop:
    emit(make(TOp::Nop, ExpCat::Base));
    return;
  case Opcode::Break:
    emit(make(TOp::Trap, ExpCat::Base));
    return;
  case Opcode::Halt:
    emit(make(TOp::Halt, ExpCat::Base));
    return;
  }
  assert(false && "unhandled OmniVM opcode");
}

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

bool TranslatorImpl::run(std::string &Error) {
  if (!Exe.isExecutable()) {
    Error = "translator requires a linked executable";
    return false;
  }
  Out.TargetName = TI.Name;
  UseGp = Opts.Optimize &&
          (Kind == TargetKind::Sparc ||
           (Opts.GpAll &&
            (Kind == TargetKind::Mips || Kind == TargetKind::Ppc)));
  setupRegisterMaps();
  if (Opts.CcSelection)
    findSetCondIdioms();
  for (unsigned R = 0; R < 16; ++R) {
    Out.VmIntRegMap[R] = IntMap[R];
    Out.VmFpRegMap[R] = FpMap[R];
  }
  computeLabels();

  emitPrologue();
  for (uint32_t Idx = 0; Idx < Exe.Code.size(); ++Idx) {
    if (Labels.count(Idx))
      startRegion(Idx);
    else if (!Cur->Code.empty() && Cur->Code.back().Op == TOp::Nop &&
             Cur->Code.size() >= 2 &&
             Cur->Code[Cur->Code.size() - 2].isBranch())
      startRegion(Idx); // break after a branch + slot
    else if (!Cur->Code.empty() && Cur->Code.back().isBranch())
      startRegion(Idx);
    if (SetCondIdioms.count(Idx)) {
      expandSetCondIdiom(Idx);
      Idx += 3; // consumed bcc/li/j/li
      continue;
    }
    expand(Idx, Exe.Code[Idx]);
  }

  // SFI optimizer: rewrite naive sandbox sequences while branch targets
  // are still VM indices. Untrusted — sficheck re-proves the result.
  if (Opts.Sfi && Opts.SfiOptimize && Kind != TargetKind::X86)
    OptStats = optimizeSfiRegions(TI, Kind, Opts, Seg, Regions);

  // Optimize regions.
  if (Opts.Optimize) {
    for (Region &R : Regions) {
      if (Kind == TargetKind::X86)
        peepholeRegion(TI, R);
      if (Opts.CcSelection && Kind == TargetKind::Ppc)
        foldRecordForms(TI, R);
      bool WantSchedule =
          !Opts.NoSchedule &&
          (Kind == TargetKind::Mips || Kind == TargetKind::Ppc ||
           Kind == TargetKind::X86);
      // The mobile x86 translator performs only floating-point pipeline
      // scheduling (paper §4); native compilers schedule everything.
      if (WantSchedule && Kind == TargetKind::X86 && !Opts.CcSelection) {
        bool HasFp = false;
        for (const TInstr &I : R.Code)
          if (instrUnit(I) == UnitClass::Fp)
            HasFp = true;
        WantSchedule = HasFp;
      }
      if (WantSchedule)
        scheduleRegion(TI, R);
      if (TI.HasDelaySlot)
        fillDelaySlot(TI, R);
    }
  }

  // Alignment/padding layout knob: pad so that regions entered by a
  // backward branch (loop headers) start on a LoopAlign boundary. The
  // pads are honest cost — they execute on fall-through entry — and this
  // timing model gives alignment itself no fetch benefit, so the knob
  // measures pure padding overhead (cf. the padding study in PAPERS.md).
  std::vector<uint8_t> AlignBefore(Regions.size(), 0);
  if (Opts.LoopAlign >= 2 &&
      (Opts.LoopAlign & (Opts.LoopAlign - 1)) == 0) {
    std::map<uint32_t, size_t> StartToRegion;
    for (size_t RI = 0; RI < Regions.size(); ++RI)
      if (Regions[RI].VmStart != ~0u)
        StartToRegion[Regions[RI].VmStart] = RI;
    for (size_t RI = 0; RI < Regions.size(); ++RI)
      for (const TInstr &I : Regions[RI].Code) {
        switch (I.Op) {
        case TOp::Branch:
        case TOp::CmpBranch:
        case TOp::BranchCC:
        case TOp::FBranchCC:
        case TOp::BranchDec:
          break;
        default:
          continue;
        }
        auto It = StartToRegion.find(static_cast<uint32_t>(I.Target));
        if (It != StartToRegion.end() && It->second <= RI)
          AlignBefore[It->second] = 1;
      }
  }

  // Concatenate regions; build the VM->native map.
  Out.VmToNative.assign(Exe.Code.size(), 0);
  Out.Code.clear();
  std::vector<uint32_t> RegionStart(Regions.size());
  for (size_t RI = 0; RI < Regions.size(); ++RI) {
    if (AlignBefore[RI])
      while (Out.Code.size() % Opts.LoopAlign != 0) {
        TInstr Pad = make(TOp::Nop, ExpCat::Other);
        Pad.VmIndex = -1;
        Out.Code.push_back(Pad);
      }
    RegionStart[RI] = static_cast<uint32_t>(Out.Code.size());
    Out.Code.insert(Out.Code.end(), Regions[RI].Code.begin(),
                    Regions[RI].Code.end());
  }
  for (size_t RI = 0; RI < Regions.size(); ++RI) {
    if (Regions[RI].VmStart == ~0u)
      continue;
    uint32_t From = Regions[RI].VmStart;
    uint32_t To = RI + 1 < Regions.size() && Regions[RI + 1].VmStart != ~0u
                      ? Regions[RI + 1].VmStart
                      : static_cast<uint32_t>(Exe.Code.size());
    for (uint32_t V = From; V < To && V < Exe.Code.size(); ++V)
      Out.VmToNative[V] = RegionStart[RI];
  }
  // SFI-optimizer preheaders intercept every mapped entry into their
  // loop's VM range: returns, indirect jumps, and direct branches from
  // other regions (all resolved through VmToNative) then re-establish the
  // hold register before falling into the body. The loop's own back edge
  // bypasses this below.
  for (size_t RI = 0; RI < Regions.size(); ++RI) {
    if (Regions[RI].PreheaderFor == ~0u)
      continue;
    uint32_t From = Regions[RI].PreheaderFor;
    uint32_t To = From;
    for (size_t J = RI + 1; J < Regions.size(); ++J)
      if (Regions[J].VmStart != ~0u && Regions[J].VmStart != From) {
        To = Regions[J].VmStart;
        break;
      }
    if (To == From)
      To = static_cast<uint32_t>(Exe.Code.size());
    for (uint32_t V = From; V < To && V < Exe.Code.size(); ++V)
      Out.VmToNative[V] = RegionStart[RI];
  }

  // Fix branch targets (currently VM indices) to native indices. A
  // self-loop back edge resolves to its own region start so it does not
  // re-run the preheader the map would route it through.
  for (size_t RI = 0; RI < Regions.size(); ++RI) {
    for (size_t O = 0; O < Regions[RI].Code.size(); ++O) {
      TInstr &I = Out.Code[RegionStart[RI] + O];
      switch (I.Op) {
      case TOp::Branch:
      case TOp::CmpBranch:
      case TOp::BranchCC:
      case TOp::FBranchCC:
      case TOp::BranchDec:
      case TOp::CallDirect: {
        uint32_t VmTarget = static_cast<uint32_t>(I.Target);
        if (VmTarget >= Exe.Code.size()) {
          Error = formatStr("branch target %u out of range", VmTarget);
          return false;
        }
        if (Regions[RI].HasPreheader && VmTarget == Regions[RI].VmStart)
          I.Target = static_cast<int32_t>(RegionStart[RI]);
        else
          I.Target = static_cast<int32_t>(Out.VmToNative[VmTarget]);
        break;
      }
      default:
        break;
      }
    }
  }

  Out.Entry = 0; // prologue region
  return true;
}

} // namespace

bool omni::translate::translate(TargetKind Kind, const vm::Module &Exe,
                                const TranslateOptions &Opts,
                                const SegmentLayout &Seg, TargetCode &Out,
                                std::string &Error, SfiOptStats *OptStats) {
  Out = TargetCode();
  TranslatorImpl Impl(Kind, Exe, Opts, Seg, Out);
  bool Ok = Impl.run(Error);
  if (OptStats)
    *OptStats = Impl.OptStats;
  return Ok;
}

std::string omni::translate::printTargetCode(TargetKind Kind,
                                             const TargetCode &Code) {
  const TargetInfo &TI = getTargetInfo(Kind);
  std::string S;
  for (size_t I = 0; I < Code.Code.size(); ++I)
    appendFormat(S, "%5zu: %s\n", I, printTInstr(TI, Code.Code[I]).c_str());
  return S;
}
