//===- driver/Compiler.cpp -------------------------------------------------===//

#include "driver/Compiler.h"

#include "frontend/AST.h"
#include "frontend/Lowering.h"
#include "frontend/pascal/PascalFrontend.h"
#include "vm/Linker.h"
#include "vm/Verifier.h"

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace omni;
using namespace omni::driver;

Language omni::driver::languageForFile(const std::string &Path) {
  size_t Dot = Path.rfind('.');
  if (Dot == std::string::npos)
    return Language::MiniC;
  std::string Ext = Path.substr(Dot + 1);
  for (char &C : Ext)
    C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  if (Ext == "pas" || Ext == "p")
    return Language::Pascal;
  return Language::MiniC;
}

bool omni::driver::parseLanguageName(const std::string &Name,
                                     Language &Out) {
  std::string N = Name;
  for (char &C : N)
    C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  if (N == "minic" || N == "c") {
    Out = Language::MiniC;
    return true;
  }
  if (N == "pascal" || N == "pas") {
    Out = Language::Pascal;
    return true;
  }
  return false;
}

const char *omni::driver::languageName(Language L) {
  return L == Language::Pascal ? "pascal" : "minic";
}

bool omni::driver::compileToIR(const std::string &Source,
                               const CompileOptions &Opts, ir::Program &Out,
                               std::string &Error) {
  DiagnosticEngine Diags;
  Out = ir::Program();
  // The only language-specific step: everything below the IR is shared.
  switch (Opts.Lang) {
  case Language::MiniC: {
    std::unique_ptr<minic::TranslationUnit> TU = minic::parse(Source, Diags);
    if (!TU || !minic::lowerToIR(*TU, Out, Diags)) {
      Error = Diags.render("<source>");
      return false;
    }
    break;
  }
  case Language::Pascal:
    if (!pascal::compileToIR(Source, Out, Diags)) {
      Error = Diags.render("<source>");
      return false;
    }
    break;
  }
  std::vector<std::string> VerifyErrors;
  if (!ir::verifyProgram(Out, VerifyErrors)) {
    Error = "internal error: lowering produced invalid IR: " +
            VerifyErrors.front();
    return false;
  }
  ir::optimizeProgram(Out, Opts.Opt);
  // Addressing-mode selection (indexed loads) is part of code generation
  // and runs at every optimization level.
  for (ir::Function &F : Out.Functions)
    ir::foldIndexedAddressing(F);
  return true;
}

bool omni::driver::compileToObject(const std::string &Source,
                                   const CompileOptions &Opts,
                                   vm::Module &Out, std::string &Error) {
  ir::Program P;
  if (!compileToIR(Source, Opts, P, Error))
    return false;
  if (!codegen::generateOmniVM(P, Opts.CodeGen, Out, Error))
    return false;
  std::vector<std::string> VerifyErrors;
  if (!vm::verifyObject(Out, VerifyErrors)) {
    Error = "internal error: codegen produced invalid module: " +
            VerifyErrors.front();
    return false;
  }
  return true;
}

bool omni::driver::compileAndLink(const std::string &Source,
                                  const CompileOptions &Opts,
                                  vm::Module &Out, std::string &Error) {
  vm::Module Obj;
  if (!compileToObject(Source, Opts, Obj, Error))
    return false;
  std::vector<std::string> Errors;
  if (!vm::link({Obj}, vm::LinkOptions(), Out, Errors)) {
    Error = Errors.front();
    return false;
  }
  std::vector<std::string> VerifyErrors;
  if (!vm::verifyExecutable(Out, VerifyErrors)) {
    Error = "internal error: linked executable invalid: " +
            VerifyErrors.front();
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// omnicc command line
//===----------------------------------------------------------------------===//

namespace {

void printUsage(std::FILE *To) {
  std::fprintf(
      To,
      "usage: omnicc [options] <source-file>\n"
      "\n"
      "Compiles one source file into a verified OmniVM executable. The\n"
      "module is target-independent: the serving host translates it to\n"
      "native code at load time (MIPS, SPARC, PowerPC, or x86).\n"
      "\n"
      "options:\n"
      "  --lang=<name>  source language: 'minic' (default) or 'pascal'.\n"
      "                 Without this flag the language is chosen by file\n"
      "                 extension: .pas/.p compile as Pascal, everything\n"
      "                 else as MiniC. Both frontends lower to the same\n"
      "                 IR, so the rest of the pipeline is identical —\n"
      "                 see FRONTENDS.md for the contract.\n"
      "  -o <file>      write the linked executable in wire format\n"
      "  -O0            disable machine-independent optimization\n"
      "  --help         show this help\n");
}

} // namespace

int omni::driver::compilerMain(int argc, char **argv) {
  CompileOptions Opts;
  bool LangForced = false;
  std::string InputPath, OutputPath;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--help" || Arg == "-h") {
      printUsage(stdout);
      return 0;
    }
    if (Arg.rfind("--lang=", 0) == 0) {
      if (!parseLanguageName(Arg.substr(7), Opts.Lang)) {
        std::fprintf(stderr,
                     "omnicc: unknown language '%s' (try 'minic' or "
                     "'pascal')\n",
                     Arg.substr(7).c_str());
        return 1;
      }
      LangForced = true;
      continue;
    }
    if (Arg == "-o") {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "omnicc: -o needs a file name\n");
        return 1;
      }
      OutputPath = argv[++I];
      continue;
    }
    if (Arg == "-O0") {
      Opts.Opt = ir::OptOptions::none();
      continue;
    }
    if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "omnicc: unknown option '%s'\n", Arg.c_str());
      printUsage(stderr);
      return 1;
    }
    if (!InputPath.empty()) {
      std::fprintf(stderr, "omnicc: multiple input files\n");
      return 1;
    }
    InputPath = Arg;
  }

  if (InputPath.empty()) {
    printUsage(stderr);
    return 1;
  }
  if (!LangForced)
    Opts.Lang = languageForFile(InputPath);

  std::ifstream In(InputPath, std::ios::binary);
  if (!In) {
    std::fprintf(stderr, "omnicc: cannot open '%s'\n", InputPath.c_str());
    return 1;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();

  vm::Module Exe;
  std::string Error;
  if (!compileAndLink(Buf.str(), Opts, Exe, Error)) {
    std::fprintf(stderr, "%s\n", Error.c_str());
    return 1;
  }

  if (!OutputPath.empty()) {
    std::vector<uint8_t> Bytes = Exe.serialize();
    std::ofstream OutF(OutputPath, std::ios::binary);
    if (!OutF ||
        !OutF.write(reinterpret_cast<const char *>(Bytes.data()),
                    static_cast<std::streamsize>(Bytes.size()))) {
      std::fprintf(stderr, "omnicc: cannot write '%s'\n",
                   OutputPath.c_str());
      return 1;
    }
  }
  std::fprintf(stdout, "%s: %s: %zu instructions, verified\n",
               InputPath.c_str(), languageName(Opts.Lang), Exe.Code.size());
  return 0;
}
