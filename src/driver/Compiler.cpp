//===- driver/Compiler.cpp -------------------------------------------------===//

#include "driver/Compiler.h"

#include "frontend/AST.h"
#include "frontend/Lowering.h"
#include "vm/Linker.h"
#include "vm/Verifier.h"

using namespace omni;
using namespace omni::driver;

bool omni::driver::compileToIR(const std::string &Source,
                               const CompileOptions &Opts, ir::Program &Out,
                               std::string &Error) {
  DiagnosticEngine Diags;
  std::unique_ptr<minic::TranslationUnit> TU = minic::parse(Source, Diags);
  if (!TU) {
    Error = Diags.render("<source>");
    return false;
  }
  Out = ir::Program();
  if (!minic::lowerToIR(*TU, Out, Diags)) {
    Error = Diags.render("<source>");
    return false;
  }
  std::vector<std::string> VerifyErrors;
  if (!ir::verifyProgram(Out, VerifyErrors)) {
    Error = "internal error: lowering produced invalid IR: " +
            VerifyErrors.front();
    return false;
  }
  ir::optimizeProgram(Out, Opts.Opt);
  // Addressing-mode selection (indexed loads) is part of code generation
  // and runs at every optimization level.
  for (ir::Function &F : Out.Functions)
    ir::foldIndexedAddressing(F);
  return true;
}

bool omni::driver::compileToObject(const std::string &Source,
                                   const CompileOptions &Opts,
                                   vm::Module &Out, std::string &Error) {
  ir::Program P;
  if (!compileToIR(Source, Opts, P, Error))
    return false;
  if (!codegen::generateOmniVM(P, Opts.CodeGen, Out, Error))
    return false;
  std::vector<std::string> VerifyErrors;
  if (!vm::verifyObject(Out, VerifyErrors)) {
    Error = "internal error: codegen produced invalid module: " +
            VerifyErrors.front();
    return false;
  }
  return true;
}

bool omni::driver::compileAndLink(const std::string &Source,
                                  const CompileOptions &Opts,
                                  vm::Module &Out, std::string &Error) {
  vm::Module Obj;
  if (!compileToObject(Source, Opts, Obj, Error))
    return false;
  std::vector<std::string> Errors;
  if (!vm::link({Obj}, vm::LinkOptions(), Out, Errors)) {
    Error = Errors.front();
    return false;
  }
  std::vector<std::string> VerifyErrors;
  if (!vm::verifyExecutable(Out, VerifyErrors)) {
    Error = "internal error: linked executable invalid: " +
            VerifyErrors.front();
    return false;
  }
  return true;
}
