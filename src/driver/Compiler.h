//===- driver/Compiler.h - MiniC -> OmniVM compilation pipeline -*- C++ -*-===//
///
/// \file
/// Facade over the full compile pipeline: MiniC source -> typed AST ->
/// IR -> machine-independent optimization -> OmniVM object module ->
/// linked executable. This is the "compile once, ship anywhere" half of
/// the Omniware system; translation to native code happens at load time on
/// the host (see translate/).
///
//===----------------------------------------------------------------------===//
#ifndef OMNI_DRIVER_COMPILER_H
#define OMNI_DRIVER_COMPILER_H

#include "codegen/OmniCodeGen.h"
#include "ir/Passes.h"
#include "vm/Module.h"

#include <string>

namespace omni {
namespace driver {

/// Compilation configuration.
struct CompileOptions {
  ir::OptOptions Opt = ir::OptOptions::standard();
  codegen::CodeGenOptions CodeGen;
};

/// Compiles MiniC source to IR (exposed for the native backends and for
/// tests). Returns false and fills \p Error with rendered diagnostics.
bool compileToIR(const std::string &Source, const CompileOptions &Opts,
                 ir::Program &Out, std::string &Error);

/// Compiles MiniC source to a relocatable OmniVM object module.
bool compileToObject(const std::string &Source, const CompileOptions &Opts,
                     vm::Module &Out, std::string &Error);

/// Compiles and links a single MiniC source into a verified executable.
bool compileAndLink(const std::string &Source, const CompileOptions &Opts,
                    vm::Module &Out, std::string &Error);

} // namespace driver
} // namespace omni

#endif // OMNI_DRIVER_COMPILER_H
