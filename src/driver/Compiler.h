//===- driver/Compiler.h - source -> OmniVM compilation pipeline -*- C++ -*-===//
///
/// \file
/// Facade over the full compile pipeline: source (MiniC or Pascal) ->
/// typed AST -> shared IR -> machine-independent optimization -> OmniVM
/// object module -> linked executable. This is the "compile once, ship
/// anywhere" half of the Omniware system; translation to native code
/// happens at load time on the host (see translate/). The frontends are
/// interchangeable above the IR — see FRONTENDS.md for the contract a
/// new language must satisfy.
///
//===----------------------------------------------------------------------===//
#ifndef OMNI_DRIVER_COMPILER_H
#define OMNI_DRIVER_COMPILER_H

#include "codegen/OmniCodeGen.h"
#include "ir/Passes.h"
#include "vm/Module.h"

#include <string>

namespace omni {
namespace driver {

/// Source languages with a frontend on the substrate. (OmniVM assembly is
/// handled separately by vm::assemble.)
enum class Language { MiniC, Pascal };

/// Compilation configuration.
struct CompileOptions {
  Language Lang = Language::MiniC;
  ir::OptOptions Opt = ir::OptOptions::standard();
  codegen::CodeGenOptions CodeGen;
};

/// Language selection by file extension: `.pas`/`.p` -> Pascal,
/// everything else -> MiniC.
Language languageForFile(const std::string &Path);

/// Parses a `--lang=` value ("minic" or "pascal", case-insensitive).
/// Returns false on an unknown name.
bool parseLanguageName(const std::string &Name, Language &Out);

/// Printable language name.
const char *languageName(Language L);

/// Compiles source to IR (exposed for the native backends and for
/// tests). Returns false and fills \p Error with rendered diagnostics.
bool compileToIR(const std::string &Source, const CompileOptions &Opts,
                 ir::Program &Out, std::string &Error);

/// Compiles source to a relocatable OmniVM object module.
bool compileToObject(const std::string &Source, const CompileOptions &Opts,
                     vm::Module &Out, std::string &Error);

/// Compiles and links a single source into a verified executable.
bool compileAndLink(const std::string &Source, const CompileOptions &Opts,
                    vm::Module &Out, std::string &Error);

/// Entry point of the `omnicc` command-line compiler (thin wrapper in
/// tools/omnicc.cpp). Compiles one source file to a verified OmniVM
/// executable; `--help` documents the flags, including language
/// selection via `--lang=` or file extension.
int compilerMain(int argc, char **argv);

} // namespace driver
} // namespace omni

#endif // OMNI_DRIVER_COMPILER_H
