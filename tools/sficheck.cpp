//===- tools/sficheck.cpp - Offline SFI proof checker ----------------------===//
///
/// Checks translations offline, independently of the hosting service:
/// deserializes OWX modules (or compiles the built-in benchmark
/// workloads), translates them for the requested targets, and runs the
/// SFI proof checker over the emitted code, printing per-obligation
/// verdicts. Exit status is nonzero when any enforced obligation fails —
/// the shape CI wants: `sficheck --workloads` gates every translation the
/// test workloads produce.
///
//===----------------------------------------------------------------------===//

#include "sficheck/SfiChecker.h"

#include "driver/Compiler.h"
#include "translate/SfiOpt.h"
#include "translate/Translator.h"
#include "vm/Module.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace omni;

namespace {

struct CliOptions {
  std::vector<target::TargetKind> Targets;
  bool Workloads = false;
  bool Verbose = false;
  translate::TranslateOptions TOpts = translate::TranslateOptions::mobile(true);
  std::vector<std::string> Files;
};

void usage() {
  std::fprintf(stderr,
               "usage: sficheck [options] <module.owx>...\n"
               "       sficheck [options] --workloads\n"
               "\n"
               "Proves SFI safety obligations over translated images.\n"
               "\n"
               "options:\n"
               "  --workloads      check the built-in benchmark workloads\n"
               "  --target <t>     mips|sparc|ppc|x86|all (default all)\n"
               "  --no-sfi         image is translated without SFI "
               "(obligations become assumptions)\n"
               "  --sfi-reads      sandbox and enforce loads too\n"
               "  --no-opt         translate without optimizations\n"
               "  --sfi-opt        run the SFI optimizer (guard sharing, "
               "or-elision,\n                   loop hoisting); its output "
               "must still prove\n"
               "  --verbose        print every obligation, not just "
               "failures\n");
}

bool parseTarget(const char *Name, std::vector<target::TargetKind> &Out) {
  if (!std::strcmp(Name, "all")) {
    for (unsigned I = 0; I < target::NumTargets; ++I)
      Out.push_back(target::allTargets(I));
    return true;
  }
  if (!std::strcmp(Name, "mips"))
    Out.push_back(target::TargetKind::Mips);
  else if (!std::strcmp(Name, "sparc"))
    Out.push_back(target::TargetKind::Sparc);
  else if (!std::strcmp(Name, "ppc"))
    Out.push_back(target::TargetKind::Ppc);
  else if (!std::strcmp(Name, "x86"))
    Out.push_back(target::TargetKind::X86);
  else
    return false;
  return true;
}

/// Checks one module on one target; prints the verdict line (and, when
/// verbose, every obligation). Returns true when nothing failed.
bool checkOne(const std::string &Label, const vm::Module &Exe,
              target::TargetKind Kind, const CliOptions &Cli) {
  translate::SegmentLayout Seg;
  Seg.Base = Exe.LinkBase ? Exe.LinkBase : vm::DefaultSegmentBase;
  Seg.Size = vm::DefaultSegmentSize;

  target::TargetCode Code;
  std::string Error;
  translate::SfiOptStats OptStats;
  if (!translate::translate(Kind, Exe, Cli.TOpts, Seg, Code, Error,
                            &OptStats)) {
    std::printf("%s @ %s: translation failed: %s\n", Label.c_str(),
                target::getTargetName(Kind), Error.c_str());
    return false;
  }
  if (Cli.TOpts.SfiOptimize && Cli.Verbose)
    std::printf("%s @ %-5s: sfi-opt: %u groups (%u accesses), %u "
                "or-elisions, %u loops hoisted (%u accesses), %d sfi "
                "instrs removed\n",
                Label.c_str(), target::getTargetName(Kind),
                OptStats.GroupsFormed, OptStats.UnitsCoalesced,
                OptStats.OrElisions, OptStats.LoopsHoisted,
                OptStats.UnitsHoisted, OptStats.SfiInstrsRemoved);

  sficheck::CheckOptions CO;
  CO.Sfi = Cli.TOpts.Sfi;
  CO.SfiReads = Cli.TOpts.SfiReads;
  CO.RecordObligations = Cli.Verbose;
  sficheck::CheckResult R = sficheck::checkTranslation(Kind, Code, Seg, CO);

  std::printf("%s @ %-5s: %llu obligations: %llu proved, %llu assumed, "
              "%llu failed — %s\n",
              Label.c_str(), target::getTargetName(Kind),
              static_cast<unsigned long long>(R.Proved + R.Assumed +
                                              R.Failed),
              static_cast<unsigned long long>(R.Proved),
              static_cast<unsigned long long>(R.Assumed),
              static_cast<unsigned long long>(R.Failed),
              R.Ok ? "OK" : "REJECTED");
  for (const sficheck::Obligation &Ob : R.Obligations) {
    if (!Cli.Verbose && Ob.V != sficheck::Verdict::Failed)
      continue;
    std::printf("  #%-6u vm %-5d %-13s %-7s %s\n", Ob.NativeIndex, Ob.VmIndex,
                sficheck::getObKindName(Ob.Kind),
                sficheck::getVerdictName(Ob.V), Ob.Detail.c_str());
  }
  return R.Ok;
}

bool readFile(const std::string &Path, std::vector<uint8_t> &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  Out.assign(std::istreambuf_iterator<char>(In),
             std::istreambuf_iterator<char>());
  return true;
}

} // namespace

int main(int argc, char **argv) {
  CliOptions Cli;
  for (int I = 1; I < argc; ++I) {
    const char *A = argv[I];
    if (!std::strcmp(A, "--workloads")) {
      Cli.Workloads = true;
    } else if (!std::strcmp(A, "--verbose")) {
      Cli.Verbose = true;
    } else if (!std::strcmp(A, "--no-sfi")) {
      Cli.TOpts.Sfi = false;
    } else if (!std::strcmp(A, "--sfi-reads")) {
      Cli.TOpts.SfiReads = true;
    } else if (!std::strcmp(A, "--no-opt")) {
      Cli.TOpts.Optimize = false;
    } else if (!std::strcmp(A, "--sfi-opt")) {
      Cli.TOpts.SfiOptimize = true;
    } else if (!std::strcmp(A, "--target")) {
      if (++I >= argc || !parseTarget(argv[I], Cli.Targets)) {
        usage();
        return 2;
      }
    } else if (!std::strcmp(A, "--help") || !std::strcmp(A, "-h")) {
      usage();
      return 0;
    } else if (A[0] == '-') {
      usage();
      return 2;
    } else {
      Cli.Files.push_back(A);
    }
  }
  if (Cli.Targets.empty())
    for (unsigned I = 0; I < target::NumTargets; ++I)
      Cli.Targets.push_back(target::allTargets(I));
  if (!Cli.Workloads && Cli.Files.empty()) {
    usage();
    return 2;
  }

  bool AllOk = true;
  if (Cli.Workloads) {
    for (unsigned W = 0; W < workloads::NumWorkloads; ++W) {
      const workloads::Workload &WL = workloads::getWorkload(W);
      driver::CompileOptions COpts;
      vm::Module Exe;
      std::string Error;
      if (!driver::compileAndLink(WL.Source, COpts, Exe, Error)) {
        std::printf("%s: compile failed: %s\n", WL.Name, Error.c_str());
        AllOk = false;
        continue;
      }
      for (target::TargetKind Kind : Cli.Targets)
        AllOk &= checkOne(WL.Name, Exe, Kind, Cli);

      // The Pascal port of the same workload: a different frontend,
      // the same proof obligations. CI runs this matrix with and
      // without --sfi-opt.
      if (!WL.PascalSource)
        continue;
      driver::CompileOptions PasOpts;
      PasOpts.Lang = driver::Language::Pascal;
      vm::Module PasExe;
      if (!driver::compileAndLink(WL.PascalSource, PasOpts, PasExe, Error)) {
        std::printf("%s.pas: compile failed: %s\n", WL.Name, Error.c_str());
        AllOk = false;
        continue;
      }
      for (target::TargetKind Kind : Cli.Targets)
        AllOk &= checkOne(std::string(WL.Name) + ".pas", PasExe, Kind, Cli);
    }
  }
  for (const std::string &Path : Cli.Files) {
    std::vector<uint8_t> Owx;
    if (!readFile(Path, Owx)) {
      std::printf("%s: cannot read file\n", Path.c_str());
      AllOk = false;
      continue;
    }
    vm::Module Exe;
    std::string Error;
    if (!vm::Module::deserialize(Owx, Exe, Error)) {
      std::printf("%s: not a valid OWX module: %s\n", Path.c_str(),
                  Error.c_str());
      AllOk = false;
      continue;
    }
    for (target::TargetKind Kind : Cli.Targets)
      AllOk &= checkOne(Path, Exe, Kind, Cli);
  }
  return AllOk ? 0 : 1;
}
