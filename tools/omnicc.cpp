//===- tools/omnicc.cpp - command-line OmniVM compiler --------------------===//
///
/// Thin wrapper: all logic (argument parsing, language selection, the
/// --help text) lives in driver::compilerMain so it is testable without
/// spawning a process.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"

int main(int argc, char **argv) {
  return omni::driver::compilerMain(argc, argv);
}
